// Communication Manager (ComMan / "CornMan").
//
// Interposes on the inter-site RPC path (client-ComMan-NetMsgServer-network-
// NetMsgServer-ComMan-server, Section 3.1 of the paper) and "spies on the
// contents" of transactional messages: every response leaving a site carries
// the list of sites used to generate it; the receiving ComMan strips and
// merges that list. If every operation responds, the site that began the
// transaction eventually knows every participant — exactly the set the
// transaction manager needs as its subordinates at commit time.
//
// The wire-level interposition cost model lives in NetMsgServer (ipc); this
// class supplies the hooks and the per-family knowledge, plus the name
// service facade applications use (Figure 1, event 1).
#ifndef SRC_COMMAN_COMMAN_H_
#define SRC_COMMAN_COMMAN_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ipc/name_service.h"
#include "src/ipc/netmsg.h"
#include "src/ipc/site.h"

namespace camelot {

class ComMan {
 public:
  ComMan(Site& site, NetMsgServer& netmsg, NameService& names);

  // --- Data path ---------------------------------------------------------------
  // Calls a named service wherever it lives: a local IPC for services on this
  // site, or a ComMan-interposed remote RPC otherwise. This is THE call path
  // for transactional operations (applications and servers both use it).
  // `deadline` (absolute virtual time; 0 = none) is the client deadline,
  // propagated in the RpcContext so the callee can shed expired work.
  Async<RpcResult> Call(const std::string& service, uint32_t method, Bytes body, const Tid& tid,
                        RpcTrace* trace = nullptr, SimTime deadline = 0);

  // Name-service lookup on behalf of an application (one local IPC).
  Async<Result<SiteId>> Lookup(const std::string& service);

  // --- Transaction knowledge ----------------------------------------------------
  // The sites this site knows to be involved in the family (always includes
  // sites we called or were called by; never includes this site itself).
  std::vector<SiteId> KnownSites(const FamilyId& family) const;

  // Marks a remote site as involved (used by TranMan when it learns of
  // participants through protocol messages rather than the RPC path).
  void NoteSite(const FamilyId& family, SiteId site);

  // True if a participant of the family crashed and restarted mid-transaction:
  // locks and volatile state at that site are gone, so reads made there may be
  // stale and the transaction MUST abort ("after a failure ... the recovery
  // process ... undo[es] updates of interrupted transactions").
  bool IsPoisoned(const FamilyId& family) const { return poisoned_.contains(family); }

  // Forgets a family once its transaction has committed or aborted everywhere.
  void Forget(const FamilyId& family);

  size_t tracked_family_count() const { return involved_.size(); }

  Site& site() { return site_; }
  NameService& names() { return names_; }
  NetMsgServer& netmsg() { return netmsg_; }

 private:
  Bytes EncodeSitesFor(const Tid& tid) const;
  void IngestSites(const Tid& tid, const Bytes& piggyback, SiteId responder,
                   uint32_t incarnation);

  Site& site_;
  NetMsgServer& netmsg_;
  NameService& names_;
  std::unordered_map<FamilyId, std::set<SiteId>> involved_;
  // First-observed incarnation of each participant, per family.
  std::unordered_map<FamilyId, std::unordered_map<SiteId, uint32_t>> incarnations_;
  std::set<FamilyId> poisoned_;
};

}  // namespace camelot

#endif  // SRC_COMMAN_COMMAN_H_
