// ASCII line charts for the figure benches: renders latency/throughput series
// the way the paper's Figures 2-5 plot them (x = subordinates or app/server
// pairs, y = ms or TPS), so a bench's output is readable as the figure itself.
#ifndef SRC_STATS_ASCII_CHART_H_
#define SRC_STATS_ASCII_CHART_H_

#include <string>
#include <vector>

namespace camelot {

class AsciiChart {
 public:
  // `width` and `height` are the plot-area dimensions in characters.
  AsciiChart(std::string x_label, std::string y_label, int width = 60, int height = 16);

  // Adds one series; `marker` is the character plotted at each point.
  // x values may be arbitrary (not necessarily evenly spaced).
  void AddSeries(std::string name, char marker, std::vector<double> xs,
                 std::vector<double> ys);

  // Renders the chart with axes, y-scale labels, and a legend.
  std::string Render() const;
  void Print() const;

 private:
  struct Series {
    std::string name;
    char marker;
    std::vector<double> xs;
    std::vector<double> ys;
  };

  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  std::vector<Series> series_;
};

}  // namespace camelot

#endif  // SRC_STATS_ASCII_CHART_H_
