// CostLedger: a queryable record of every cost-model primitive the running
// system executes — log forces and spooled appends, datagrams, local IPCs,
// remote RPCs — each tagged {family, site, role, phase, primitive}.
//
// The paper's static analysis (src/analysis) predicts protocol latency as a
// sum of exactly these primitives (Table 2). The ledger is the measured side
// of that equation: the ConformanceOracle (src/harness) diffs the predicted
// primitive-count vector against the ledger after every fault-free protocol
// run, so an extra log force or datagram fails tests instead of silently
// invalidating every reproduced figure.
//
// Count vectors are keyed "role/phase/primitive", e.g.
//   coord/2pc.commit/force   sub/COMMIT-ACK/dgram   ipc/tranman/call
// Roles "coord" and "sub" describe protocol work; "ipc" the local/remote IPC
// layer; "net" and "wal" are site-level shadows of the same activity (every
// datagram also appears as net/..., every force as wal/...) kept outside the
// conformance domain.
#ifndef SRC_STATS_COST_LEDGER_H_
#define SRC_STATS_COST_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace camelot {

// One countable primitive from the paper's Table 2 cost model.
enum class CostPrimitive {
  kLogForce,        // Synchronous log force (15ms in the model).
  kLogSpool,        // Unforced log append (free in the model, counted anyway).
  kDatagram,        // One protocol message to one destination.
  kLocalIpc,        // Local RPC, client-style (1.5ms).
  kLocalIpcServer,  // Local RPC into a data server (3.0ms).
  kLocalOutOfLine,  // Local RPC with out-of-line body (5.5ms).
  kLocalOneway,     // Local one-way notification (1.0ms).
  kRemoteRpc,       // Remote server-to-server RPC (29ms).
};

// Short key suffix: "force", "spool", "dgram", "call", "server_call", "oob",
// "oneway", "rpc".
const char* CostPrimitiveSuffix(CostPrimitive primitive);

struct CostEvent {
  FamilyId family;    // Invalid origin when not attributable to one family.
  SiteId site;
  std::string role;   // "coord", "sub", "ipc", "net", "wal", "peer", ...
  std::string phase;  // Protocol step ("2pc.commit") or message type ("PREPARE").
  CostPrimitive primitive = CostPrimitive::kLogForce;
};

// Counts keyed "role/phase/primitive-suffix". A std::map so diffs and
// renders are deterministically ordered.
using CountVector = std::map<std::string, int64_t>;

// Merge `add` into `into` (key-wise sum).
void AddCounts(CountVector& into, const CountVector& add);

class CostLedger {
 public:
  void Record(CostEvent event) { events_.push_back(std::move(event)); }
  void Clear() { events_.clear(); }
  size_t size() const { return events_.size(); }
  const std::vector<CostEvent>& events() const { return events_; }

  // Every event, regardless of family or role.
  CountVector Counts() const;
  // Only events attributed to `family`.
  CountVector CountsForFamily(const FamilyId& family) const;
  // The conformance domain: everything except the site-level "net" and "wal"
  // shadows. Unexpected roles (e.g. "takeover" activity during a fault-free
  // run) are deliberately kept so they show up in a diff.
  CountVector ConformanceCounts() const;
  // Protocol-only view: ConformanceCounts() minus the IPC layer ("ipc/...").
  // This is what the explorers gate their discovery runs against.
  CountVector ProtocolCounts() const;

  // "role/phase/primitive-suffix" for one event.
  static std::string Key(const CostEvent& event);

  // Human-readable per-primitive diff; empty string iff the vectors match
  // exactly. Lines look like:
  //   sub/commit/force: predicted 0, measured 1 (+1)
  static std::string Diff(const CountVector& predicted, const CountVector& measured);

  // One "key: count" line per entry, for reports.
  static std::string Render(const CountVector& counts);

 private:
  std::vector<CostEvent> events_;
};

// Per-site recording handle, wired through the runtime exactly like
// Failpoints: a default-constructed recorder is inert, so production objects
// carry one unconditionally and only worlds that install a ledger pay for
// recording.
class CostRecorder {
 public:
  CostRecorder() = default;
  CostRecorder(CostLedger* ledger, SiteId site) : ledger_(ledger), site_(site) {}

  bool active() const { return ledger_ != nullptr; }
  SiteId site() const { return site_; }

  void Record(const FamilyId& family, std::string role, std::string phase,
              CostPrimitive primitive) const {
    if (ledger_ == nullptr) {
      return;
    }
    ledger_->Record(CostEvent{family, site_, std::move(role), std::move(phase), primitive});
  }

 private:
  CostLedger* ledger_ = nullptr;
  SiteId site_{};
};

}  // namespace camelot

#endif  // SRC_STATS_COST_LEDGER_H_
