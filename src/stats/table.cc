#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>

namespace camelot {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "\n";
  }
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += pad(row[c], widths[c]);
      out += (c + 1 < headers_.size()) ? "  " : "\n";
    }
  }
  return out;
}

std::string Table::RenderCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') {
        out += '"';
      }
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += quote(headers_[c]);
    out += (c + 1 < headers_.size()) ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += quote(row[c]);
      out += (c + 1 < headers_.size()) ? "," : "\n";
    }
  }
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace camelot
