#include "src/stats/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace camelot {

AsciiChart::AsciiChart(std::string x_label, std::string y_label, int width, int height)
    : x_label_(std::move(x_label)), y_label_(std::move(y_label)), width_(width),
      height_(height) {}

void AsciiChart::AddSeries(std::string name, char marker, std::vector<double> xs,
                           std::vector<double> ys) {
  series_.push_back(Series{std::move(name), marker, std::move(xs), std::move(ys)});
}

std::string AsciiChart::Render() const {
  double x_min = 0;
  double x_max = 1;
  double y_max = 1;
  bool first = true;
  for (const auto& s : series_) {
    for (size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (first) {
        x_min = x_max = s.xs[i];
        first = false;
      }
      x_min = std::min(x_min, s.xs[i]);
      x_max = std::max(x_max, s.xs[i]);
      y_max = std::max(y_max, s.ys[i]);
    }
  }
  if (x_max == x_min) {
    x_max = x_min + 1;
  }
  y_max *= 1.05;  // Headroom so the top point is visible.

  // Grid of (height_) rows x (width_) columns; row 0 is the TOP.
  std::vector<std::string> grid(static_cast<size_t>(height_),
                                std::string(static_cast<size_t>(width_), ' '));
  auto plot = [&](double x, double y, char marker) {
    const int col = static_cast<int>(std::lround((x - x_min) / (x_max - x_min) *
                                                 (width_ - 1)));
    const int row = height_ - 1 -
                    static_cast<int>(std::lround(y / y_max * (height_ - 1)));
    if (col >= 0 && col < width_ && row >= 0 && row < height_) {
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = marker;
    }
  };
  // Connect consecutive points with interpolated marks, then overwrite the
  // exact points with the series marker so vertices stand out.
  for (const auto& s : series_) {
    for (size_t i = 0; i + 1 < s.xs.size() && i + 1 < s.ys.size(); ++i) {
      const int steps = width_ / std::max<int>(1, static_cast<int>(s.xs.size()) - 1);
      for (int k = 1; k < steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot(s.xs[i] + t * (s.xs[i + 1] - s.xs[i]), s.ys[i] + t * (s.ys[i + 1] - s.ys[i]),
             '.');
      }
    }
  }
  for (const auto& s : series_) {
    for (size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      plot(s.xs[i], s.ys[i], s.marker);
    }
  }

  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\n", y_label_.c_str());
  out += buf;
  for (int row = 0; row < height_; ++row) {
    const double y_at_row = y_max * (height_ - 1 - row) / (height_ - 1);
    if (row % 4 == 0 || row == height_ - 1) {
      std::snprintf(buf, sizeof(buf), "%7.1f |", y_at_row);
    } else {
      std::snprintf(buf, sizeof(buf), "        |");
    }
    out += buf;
    out += grid[static_cast<size_t>(row)];
    out += '\n';
  }
  out += "        +";
  out += std::string(static_cast<size_t>(width_), '-');
  out += '\n';
  std::snprintf(buf, sizeof(buf), "        %-6.1f", x_min);
  out += buf;
  out += std::string(static_cast<size_t>(std::max(0, width_ - 12)), ' ');
  std::snprintf(buf, sizeof(buf), "%6.1f  (%s)\n", x_max, x_label_.c_str());
  out += buf;
  for (const auto& s : series_) {
    std::snprintf(buf, sizeof(buf), "        %c = %s\n", s.marker, s.name.c_str());
    out += buf;
  }
  return out;
}

void AsciiChart::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace camelot
