// Streaming statistics: mean/stddev via Welford, min/max, and exact percentiles
// over retained samples. Used by every bench to report the paper's
// "mean (stddev)" numbers.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace camelot {

class Summary {
 public:
  void Add(double x);

  size_t count() const { return samples_.size(); }
  double mean() const { return count() == 0 ? 0.0 : mean_; }
  // Sample standard deviation (n-1 denominator), as reported in the paper's figures.
  double stddev() const;
  double min() const { return count() == 0 ? 0.0 : min_; }
  double max() const { return count() == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count()); }

  // Exact p-th percentile (0 <= p <= 100) by nearest-rank over retained samples.
  double Percentile(double p) const;
  double median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

  // "12.3 (1.4)" — mean with stddev in parentheses, the paper's display format.
  std::string MeanStddevString(int precision = 1) const;

  void Clear();

 private:
  std::vector<double> samples_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace camelot

#endif  // SRC_STATS_SUMMARY_H_
