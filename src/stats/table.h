// Fixed-width ASCII table printer used by the benches to render the paper's
// tables and figure data series side by side with the paper's reference values.
#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <string>
#include <vector>

namespace camelot {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: format a double with the given precision.
  static std::string Num(double v, int precision = 1);

  // Renders with a header underline and column padding.
  std::string Render() const;

  // Renders as CSV (for downstream plotting).
  std::string RenderCsv() const;

  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace camelot

#endif  // SRC_STATS_TABLE_H_
