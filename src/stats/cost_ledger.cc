#include "src/stats/cost_ledger.h"

#include <cstdio>

namespace camelot {

const char* CostPrimitiveSuffix(CostPrimitive primitive) {
  switch (primitive) {
    case CostPrimitive::kLogForce:
      return "force";
    case CostPrimitive::kLogSpool:
      return "spool";
    case CostPrimitive::kDatagram:
      return "dgram";
    case CostPrimitive::kLocalIpc:
      return "call";
    case CostPrimitive::kLocalIpcServer:
      return "server_call";
    case CostPrimitive::kLocalOutOfLine:
      return "oob";
    case CostPrimitive::kLocalOneway:
      return "oneway";
    case CostPrimitive::kRemoteRpc:
      return "rpc";
  }
  return "unknown";
}

void AddCounts(CountVector& into, const CountVector& add) {
  for (const auto& [key, count] : add) {
    into[key] += count;
  }
}

std::string CostLedger::Key(const CostEvent& event) {
  return event.role + "/" + event.phase + "/" + CostPrimitiveSuffix(event.primitive);
}

CountVector CostLedger::Counts() const {
  CountVector counts;
  for (const CostEvent& event : events_) {
    ++counts[Key(event)];
  }
  return counts;
}

CountVector CostLedger::CountsForFamily(const FamilyId& family) const {
  CountVector counts;
  for (const CostEvent& event : events_) {
    if (event.family == family) {
      ++counts[Key(event)];
    }
  }
  return counts;
}

CountVector CostLedger::ConformanceCounts() const {
  CountVector counts;
  for (const CostEvent& event : events_) {
    if (event.role == "net" || event.role == "wal") {
      continue;
    }
    ++counts[Key(event)];
  }
  return counts;
}

CountVector CostLedger::ProtocolCounts() const {
  CountVector counts;
  for (const CostEvent& event : events_) {
    if (event.role == "net" || event.role == "wal" || event.role == "ipc") {
      continue;
    }
    ++counts[Key(event)];
  }
  return counts;
}

std::string CostLedger::Diff(const CountVector& predicted, const CountVector& measured) {
  CountVector keys;  // Union of both key sets, values unused.
  for (const auto& [key, count] : predicted) {
    keys[key] = 0;
  }
  for (const auto& [key, count] : measured) {
    keys[key] = 0;
  }
  std::string out;
  for (const auto& [key, unused] : keys) {
    const auto p = predicted.find(key);
    const auto m = measured.find(key);
    const int64_t pv = p == predicted.end() ? 0 : p->second;
    const int64_t mv = m == measured.end() ? 0 : m->second;
    if (pv == mv) {
      continue;
    }
    char line[256];
    std::snprintf(line, sizeof(line), "  %s: predicted %lld, measured %lld (%+lld)\n",
                  key.c_str(), static_cast<long long>(pv), static_cast<long long>(mv),
                  static_cast<long long>(mv - pv));
    out += line;
  }
  return out;
}

std::string CostLedger::Render(const CountVector& counts) {
  std::string out;
  for (const auto& [key, count] : counts) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %s: %lld\n", key.c_str(),
                  static_cast<long long>(count));
    out += line;
  }
  return out;
}

}  // namespace camelot
