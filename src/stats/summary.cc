#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace camelot {

void Summary::Add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(samples_.size() - 1));
}

double Summary::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string Summary::MeanStddevString(int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f (%.*f)", precision, mean(), precision, stddev());
  return buf;
}

void Summary::Clear() {
  samples_.clear();
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace camelot
