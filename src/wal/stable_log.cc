#include "src/wal/stable_log.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "src/base/logging.h"

namespace camelot {

namespace {
// Frame layout: payload length (4) + payload CRC (4) + header CRC over the
// first 8 bytes (4). The header CRC lets replay trust the length field, which
// is what makes a torn tail (valid header, payload cut short) distinguishable
// from interior corruption (header or payload CRC mismatch on a complete
// frame).
constexpr size_t kFrameHeaderBytes = 12;
}  // namespace

StableLog::StableLog(Scheduler& sched, LogConfig config)
    : sched_(sched), config_(config), disk_(sched), fault_rng_(sched.rng().Fork()) {}

Lsn StableLog::Append(const LogRecord& record) {
  const Bytes payload = record.Encode();
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.U32(Crc32(frame.bytes().data(), 8));
  const Bytes& header = frame.bytes();
  tail_.insert(tail_.end(), header.begin(), header.end());
  tail_.insert(tail_.end(), payload.begin(), payload.end());
  ++counters_.appends;
  cost_recorder_.Record(record.tid.family, "wal", "append", CostPrimitive::kLogSpool);
  return buffered_lsn();
}

Async<Lsn> StableLog::AppendAndForce(const LogRecord& record) {
  const Lsn lsn = Append(record);
  co_await Force(lsn);
  co_return lsn;
}

SimDuration StableLog::DrawWriteLatency() {
  SimDuration latency = config_.force_latency;
  if (config_.faults.write_stall_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.write_stall_probability)) {
    latency += config_.faults.write_stall_extra;
    ++counters_.write_stalls;
  }
  return latency;
}

Async<bool> StableLog::AtWritePoint(const char* point, uint64_t epoch) {
  if (!failpoints_.active()) {
    co_return false;
  }
  const FailpointHit hit = failpoints_.Eval(point);
  if (hit.action == FailpointAction::kDelay) {
    co_await sched_.Delay(hit.delay);
  }
  co_return epoch != crash_epoch_;
}

Async<bool> StableLog::Force(Lsn upto) {
  CAMELOT_CHECK(upto.value <= buffered_lsn().value);
  ++counters_.force_requests;
  cost_recorder_.Record(FamilyId{kInvalidSite, 0}, "wal", "force", CostPrimitive::kLogForce);
  if (IsDurable(upto)) {
    co_return true;
  }
  if (!config_.group_commit) {
    // Each committer performs its own serial disk write.
    const uint64_t epoch = crash_epoch_;
    co_await disk_.Lock();
    if (epoch != crash_epoch_) {
      disk_.Unlock();
      co_return IsDurable(upto);  // Crashed while queued; caller's world is gone.
    }
    if (!IsDurable(upto)) {
      if (co_await AtWritePoint("wal.force.before_write", epoch)) {
        disk_.Unlock();
        co_return IsDurable(upto);  // A failpoint crashed the site at the write.
      }
      inflight_target_ = upto.value;
      co_await sched_.Delay(DrawWriteLatency());
      if (epoch != crash_epoch_) {
        disk_.Unlock();
        co_return IsDurable(upto);  // Crashed mid-write; OnCrash published the torn prefix.
      }
      inflight_target_ = 0;
      ++counters_.disk_writes;
      Publish(upto.value);
      if (co_await AtWritePoint("wal.force.after_write", epoch)) {
        disk_.Unlock();
        co_return IsDurable(upto);  // Durable, but the site is down.
      }
    } else {
      ++counters_.records_batched;  // Someone else's write covered us anyway.
    }
    disk_.Unlock();
    co_return true;
  }

  // Group commit: enqueue and let the writer daemon batch.
  auto done = std::make_shared<Channel<bool>>(sched_);
  waiters_.push_back(ForceWaiter{upto.value, done});
  if (!writer_running_) {
    writer_running_ = true;
    sched_.Spawn(WriterDaemon());
  }
  co_await done->Receive();
  co_return IsDurable(upto);
}

Async<void> StableLog::WriterDaemon() {
  const uint64_t epoch = crash_epoch_;
  while (!waiters_.empty()) {
    if (config_.batch_window > 0) {
      co_await sched_.Delay(config_.batch_window);
      if (epoch != crash_epoch_) {
        co_return;  // A newer incarnation owns the writer flag now.
      }
    }
    // One physical write covers everything buffered right now — every waiter
    // that queued while the previous write was in progress rides along.
    if (co_await AtWritePoint("wal.force.before_write", epoch)) {
      co_return;  // A failpoint crashed the site; OnCrash closed the waiters.
    }
    const uint64_t target = buffered_lsn().value;
    inflight_target_ = target;
    co_await sched_.Delay(DrawWriteLatency());
    if (epoch != crash_epoch_) {
      co_return;  // Crashed mid-write; OnCrash already published the torn prefix.
    }
    inflight_target_ = 0;
    ++counters_.disk_writes;
    Publish(target);
    if (co_await AtWritePoint("wal.force.after_write", epoch)) {
      co_return;  // Records durable, but the crash already woke the waiters.
    }
    size_t satisfied = 0;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      if (it->upto <= durable_bytes_) {
        it->done->Send(true);
        it = waiters_.erase(it);
        ++satisfied;
      } else {
        ++it;
      }
    }
    if (satisfied > 1) {
      counters_.records_batched += satisfied - 1;
    }
  }
  writer_running_ = false;
}

void StableLog::Publish(uint64_t target) {
  CAMELOT_CHECK(target >= durable_bytes_);
  const size_t n = static_cast<size_t>(target - durable_bytes_);
  CAMELOT_CHECK(n <= tail_.size());
  const size_t rel = static_cast<size_t>(durable_bytes_ - base_offset_);
  for (int m = 0; m < active_mirrors(); ++m) {
    Bytes& image = mirror_[m];
    CAMELOT_CHECK(image.size() == rel);
    image.insert(image.end(), tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>(n));
    ++counters_.mirror_writes;
    if (!image.empty() && config_.faults.bit_rot_probability > 0.0 &&
        fault_rng_.NextBool(config_.faults.bit_rot_probability)) {
      // Latent decay of a random byte of this mirror, surfaced only when a
      // CRC check next covers it.
      image[fault_rng_.NextBounded(image.size())] ^=
          static_cast<uint8_t>(1u << fault_rng_.NextBounded(8));
      ++counters_.bit_rot_injected;
    }
  }
  if (n > 0 && config_.faults.torn_write_probability > 0.0 &&
      fault_rng_.NextBool(config_.faults.torn_write_probability)) {
    // An interrupted transfer garbles this write from a random point to its
    // end, on ONE mirror: duplexed mirrors are independent transfers, so a
    // single torn force does not take out both copies.
    const int victim = static_cast<int>(fault_rng_.NextBounded(
        static_cast<uint64_t>(active_mirrors())));
    Bytes& image = mirror_[victim];
    for (size_t i = rel + fault_rng_.NextBounded(n); i < image.size(); ++i) {
      image[i] ^= 0xa5;
    }
    ++counters_.torn_writes_injected;
  }
  tail_.erase(tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>(n));
  durable_bytes_ = target;
  counters_.bytes_written += n;
}

void StableLog::OnCrash() {
  ++crash_epoch_;
  // If a physical write was in progress, each mirror holds an independently
  // torn prefix of it (two disks stop at different points). The durable
  // watermark advances to the longest prefix: a frame is durable as long as
  // either copy holds it intact, and replay salvages across mirrors.
  if (inflight_target_ > durable_bytes_) {
    const uint64_t full = inflight_target_ - durable_bytes_;
    const size_t rel = static_cast<size_t>(durable_bytes_ - base_offset_);
    uint64_t keep = 0;
    for (int m = 0; m < active_mirrors(); ++m) {
      const uint64_t partial = sched_.rng().NextBounded(full + 1);
      mirror_[m].insert(mirror_[m].end(), tail_.begin(),
                        tail_.begin() + static_cast<ptrdiff_t>(partial));
      keep = std::max(keep, partial);
    }
    for (int m = 0; m < active_mirrors(); ++m) {
      // Pad the shorter mirror so offsets stay aligned; the padding never
      // parses as a valid frame and is repaired or truncated at replay.
      mirror_[m].resize(rel + static_cast<size_t>(keep), 0);
    }
    durable_bytes_ += keep;
    counters_.bytes_written += keep;
    inflight_target_ = 0;
  }
  tail_.clear();
  writer_running_ = false;
  for (auto& w : waiters_) {
    w.done->Close();
  }
  waiters_.clear();
}

StableLog::FrameProbe StableLog::Probe(const Bytes& image, size_t pos,
                                       size_t* frame_len) const {
  if (pos + kFrameHeaderBytes > image.size()) {
    return FrameProbe::kTorn;  // Incomplete header at the end of this copy.
  }
  ByteReader header(image.data() + pos, kFrameHeaderBytes);
  const uint32_t len = header.U32();
  const uint32_t payload_crc = header.U32();
  const uint32_t header_crc = header.U32();
  if (Crc32(image.data() + pos, 8) != header_crc) {
    return FrameProbe::kBad;  // Header damaged: the length cannot be trusted.
  }
  if (pos + kFrameHeaderBytes + len > image.size()) {
    return FrameProbe::kTorn;  // Valid header, payload cut short: torn write.
  }
  if (Crc32(image.data() + pos + kFrameHeaderBytes, len) != payload_crc) {
    return FrameProbe::kBad;  // Complete frame, corrupt payload: media damage.
  }
  *frame_len = kFrameHeaderBytes + len;
  return FrameProbe::kValid;
}

LogReplay StableLog::Replay(bool repair) {
  LogReplay out;
  const int n = active_mirrors();
  size_t pos = 0;
  for (;;) {
    FrameProbe probe[2] = {FrameProbe::kTorn, FrameProbe::kTorn};
    size_t frame_len = 0;
    int good = -1;
    std::optional<LogRecord> record;
    for (int m = 0; m < n; ++m) {
      size_t len = 0;
      probe[m] = Probe(mirror_[m], pos, &len);
      if (probe[m] != FrameProbe::kValid) {
        continue;
      }
      Bytes payload(mirror_[m].begin() + static_cast<ptrdiff_t>(pos + kFrameHeaderBytes),
                    mirror_[m].begin() + static_cast<ptrdiff_t>(pos + len));
      auto decoded = LogRecord::Decode(payload);
      if (!decoded.ok()) {
        probe[m] = FrameProbe::kBad;  // CRC-valid but undecodable: damage too.
        continue;
      }
      if (good < 0) {
        good = m;
        frame_len = len;
        record = std::move(*decoded);
      }
    }
    if (good < 0) {
      bool all_at_end = true;
      bool any_torn = false;
      for (int m = 0; m < n; ++m) {
        all_at_end = all_at_end && pos == mirror_[m].size();
        any_torn = any_torn || probe[m] == FrameProbe::kTorn;
      }
      out.end = all_at_end ? LogScanEnd::kCleanEnd
                           : (any_torn ? LogScanEnd::kTornTail
                                       : LogScanEnd::kInteriorCorruption);
      break;
    }
    if (good != 0) {
      // The primary copy of this frame was unreadable; the mirror saved it.
      ++out.frames_salvaged;
      if (repair) {
        ++counters_.frames_salvaged;
      }
    }
    if (repair) {
      for (int m = 0; m < n; ++m) {
        if (m == good || probe[m] == FrameProbe::kValid) {
          continue;
        }
        if (mirror_[m].size() < pos + frame_len) {
          mirror_[m].resize(pos + frame_len);
        }
        std::copy(mirror_[good].begin() + static_cast<ptrdiff_t>(pos),
                  mirror_[good].begin() + static_cast<ptrdiff_t>(pos + frame_len),
                  mirror_[m].begin() + static_cast<ptrdiff_t>(pos));
      }
    }
    record->lsn = Lsn{base_offset_ + pos + frame_len};
    out.records.push_back(std::move(*record));
    pos += frame_len;
  }
  if (repair) {
    if (out.end == LogScanEnd::kInteriorCorruption) {
      ++counters_.interior_corruption;
    } else if (out.end == LogScanEnd::kTornTail && tail_.empty()) {
      // Truncate the torn garbage so subsequent appends extend a clean log.
      // (Without this, a torn frame would sit mid-log forever and silently
      // end every future replay at that point.)
      for (int m = 0; m < n; ++m) {
        mirror_[m].resize(pos);
      }
      durable_bytes_ = base_offset_ + pos;
    }
  }
  return out;
}

void StableLog::ReclaimBefore(Lsn lsn) {
  CAMELOT_CHECK(lsn.value >= base_offset_);
  CAMELOT_CHECK(lsn.value <= durable_bytes_);
  const size_t drop = static_cast<size_t>(lsn.value - base_offset_);
  for (int m = 0; m < active_mirrors(); ++m) {
    CAMELOT_CHECK(mirror_[m].size() >= drop);
    mirror_[m].erase(mirror_[m].begin(), mirror_[m].begin() + static_cast<ptrdiff_t>(drop));
  }
  base_offset_ = lsn.value;
}

bool StableLog::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const Bytes& durable = mirror_[0];
  ByteWriter header;
  header.U32(0x43414d4cu);  // "CAML"
  header.U64(base_offset_);
  header.U64(durable.size());
  header.U32(Crc32(durable));
  bool ok = std::fwrite(header.bytes().data(), 1, header.size(), f) == header.size();
  ok = ok && (durable.empty() ||
              std::fwrite(durable.data(), 1, durable.size(), f) == durable.size());
  std::fclose(f);
  return ok;
}

bool StableLog::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint8_t header_bytes[24];
  if (std::fread(header_bytes, 1, sizeof(header_bytes), f) != sizeof(header_bytes)) {
    std::fclose(f);
    return false;
  }
  ByteReader header(header_bytes, sizeof(header_bytes));
  const uint32_t magic = header.U32();
  const uint64_t base = header.U64();
  const uint64_t size = header.U64();
  const uint32_t crc = header.U32();
  if (magic != 0x43414d4cu) {
    std::fclose(f);
    return false;
  }
  Bytes image(size);
  const bool read_ok =
      size == 0 || std::fread(image.data(), 1, image.size(), f) == image.size();
  std::fclose(f);
  if (!read_ok || Crc32(image) != crc) {
    return false;
  }
  mirror_[1] = config_.duplex ? image : Bytes{};
  mirror_[0] = std::move(image);
  base_offset_ = base;
  durable_bytes_ = base + mirror_[0].size();
  tail_.clear();
  return true;
}

void StableLog::CorruptDurableByte(size_t offset, int mirror) {
  CAMELOT_CHECK(mirror >= 0 && mirror < active_mirrors());
  CAMELOT_CHECK(offset < mirror_[mirror].size());
  mirror_[mirror][offset] ^= 0xff;
}

}  // namespace camelot
