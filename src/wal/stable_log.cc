#include "src/wal/stable_log.h"

#include <algorithm>

#include "src/base/logging.h"

#include <cstdio>

namespace camelot {

StableLog::StableLog(Scheduler& sched, LogConfig config)
    : sched_(sched), config_(config), disk_(sched) {}

Lsn StableLog::Append(const LogRecord& record) {
  const Bytes payload = record.Encode();
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  const Bytes& header = frame.bytes();
  tail_.insert(tail_.end(), header.begin(), header.end());
  tail_.insert(tail_.end(), payload.begin(), payload.end());
  ++counters_.appends;
  return buffered_lsn();
}

Async<Lsn> StableLog::AppendAndForce(const LogRecord& record) {
  const Lsn lsn = Append(record);
  co_await Force(lsn);
  co_return lsn;
}

Async<bool> StableLog::Force(Lsn upto) {
  CAMELOT_CHECK(upto.value <= buffered_lsn().value);
  ++counters_.force_requests;
  if (IsDurable(upto)) {
    co_return true;
  }
  if (!config_.group_commit) {
    // Each committer performs its own serial disk write.
    const uint64_t epoch = crash_epoch_;
    co_await disk_.Lock();
    if (epoch != crash_epoch_) {
      disk_.Unlock();
      co_return IsDurable(upto);  // Crashed while queued; caller's world is gone.
    }
    if (!IsDurable(upto)) {
      inflight_target_ = upto.value;
      co_await sched_.Delay(config_.force_latency);
      if (epoch != crash_epoch_) {
        disk_.Unlock();
        co_return IsDurable(upto);  // Crashed mid-write; OnCrash published the torn prefix.
      }
      inflight_target_ = 0;
      ++counters_.disk_writes;
      Publish(upto.value);
    } else {
      ++counters_.records_batched;  // Someone else's write covered us anyway.
    }
    disk_.Unlock();
    co_return true;
  }

  // Group commit: enqueue and let the writer daemon batch.
  auto done = std::make_shared<Channel<bool>>(sched_);
  waiters_.push_back(ForceWaiter{upto.value, done});
  if (!writer_running_) {
    writer_running_ = true;
    sched_.Spawn(WriterDaemon());
  }
  co_await done->Receive();
  co_return IsDurable(upto);
}

Async<void> StableLog::WriterDaemon() {
  const uint64_t epoch = crash_epoch_;
  while (!waiters_.empty()) {
    if (config_.batch_window > 0) {
      co_await sched_.Delay(config_.batch_window);
      if (epoch != crash_epoch_) {
        co_return;  // A newer incarnation owns the writer flag now.
      }
    }
    // One physical write covers everything buffered right now — every waiter
    // that queued while the previous write was in progress rides along.
    const uint64_t target = buffered_lsn().value;
    inflight_target_ = target;
    co_await sched_.Delay(config_.force_latency);
    if (epoch != crash_epoch_) {
      co_return;  // Crashed mid-write; OnCrash already published the torn prefix.
    }
    inflight_target_ = 0;
    ++counters_.disk_writes;
    Publish(target);
    size_t satisfied = 0;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      if (it->upto <= durable_bytes_) {
        it->done->Send(true);
        it = waiters_.erase(it);
        ++satisfied;
      } else {
        ++it;
      }
    }
    if (satisfied > 1) {
      counters_.records_batched += satisfied - 1;
    }
  }
  writer_running_ = false;
}

void StableLog::Publish(uint64_t target) {
  CAMELOT_CHECK(target >= durable_bytes_);
  const size_t n = static_cast<size_t>(target - durable_bytes_);
  CAMELOT_CHECK(n <= tail_.size());
  durable_.insert(durable_.end(), tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>(n));
  tail_.erase(tail_.begin(), tail_.begin() + static_cast<ptrdiff_t>(n));
  durable_bytes_ = target;
  counters_.bytes_written += n;
}

void StableLog::OnCrash() {
  ++crash_epoch_;
  // If a physical write was in progress, the disk holds a torn prefix of it:
  // publish a random number of its bytes so recovery sees a realistic torn
  // frame (ReadDurable stops at the first bad frame).
  if (inflight_target_ > durable_bytes_) {
    const uint64_t full = inflight_target_ - durable_bytes_;
    const uint64_t partial = sched_.rng().NextBounded(full + 1);
    if (partial > 0) {
      Publish(durable_bytes_ + partial);
    }
    inflight_target_ = 0;
  }
  tail_.clear();
  writer_running_ = false;
  for (auto& w : waiters_) {
    w.done->Close();
  }
  waiters_.clear();
}

std::vector<LogRecord> StableLog::ReadDurable() const {
  std::vector<LogRecord> records;
  size_t pos = 0;
  while (pos + 8 <= durable_.size()) {
    ByteReader header(durable_.data() + pos, 8);
    const uint32_t len = header.U32();
    const uint32_t crc = header.U32();
    if (pos + 8 + len > durable_.size()) {
      break;  // Torn frame at the end.
    }
    const uint8_t* payload = durable_.data() + pos + 8;
    if (Crc32(payload, len) != crc) {
      break;  // Corruption: stop replay here.
    }
    Bytes payload_bytes(payload, payload + len);
    auto rec = LogRecord::Decode(payload_bytes);
    if (!rec.ok()) {
      break;
    }
    rec->lsn = Lsn{base_offset_ + pos + 8 + len};
    records.push_back(std::move(*rec));
    pos += 8 + len;
  }
  return records;
}

void StableLog::ReclaimBefore(Lsn lsn) {
  CAMELOT_CHECK(lsn.value >= base_offset_);
  CAMELOT_CHECK(lsn.value <= durable_bytes_);
  const size_t drop = static_cast<size_t>(lsn.value - base_offset_);
  durable_.erase(durable_.begin(), durable_.begin() + static_cast<ptrdiff_t>(drop));
  base_offset_ = lsn.value;
}

bool StableLog::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  ByteWriter header;
  header.U32(0x43414d4cu);  // "CAML"
  header.U64(base_offset_);
  header.U64(durable_.size());
  header.U32(Crc32(durable_));
  bool ok = std::fwrite(header.bytes().data(), 1, header.size(), f) == header.size();
  ok = ok && (durable_.empty() ||
              std::fwrite(durable_.data(), 1, durable_.size(), f) == durable_.size());
  std::fclose(f);
  return ok;
}

bool StableLog::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint8_t header_bytes[24];
  if (std::fread(header_bytes, 1, sizeof(header_bytes), f) != sizeof(header_bytes)) {
    std::fclose(f);
    return false;
  }
  ByteReader header(header_bytes, sizeof(header_bytes));
  const uint32_t magic = header.U32();
  const uint64_t base = header.U64();
  const uint64_t size = header.U64();
  const uint32_t crc = header.U32();
  if (magic != 0x43414d4cu) {
    std::fclose(f);
    return false;
  }
  Bytes image(size);
  const bool read_ok =
      size == 0 || std::fread(image.data(), 1, image.size(), f) == image.size();
  std::fclose(f);
  if (!read_ok || Crc32(image) != crc) {
    return false;
  }
  durable_ = std::move(image);
  base_offset_ = base;
  durable_bytes_ = base + durable_.size();
  tail_.clear();
  return true;
}

void StableLog::CorruptDurableByte(size_t offset) {
  CAMELOT_CHECK(offset < durable_.size());
  durable_[offset] ^= 0xff;
}

}  // namespace camelot
