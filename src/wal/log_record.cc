#include "src/wal/log_record.h"

namespace camelot {

const char* LogRecordKindName(LogRecordKind kind) {
  switch (kind) {
    case LogRecordKind::kUpdate:
      return "UPDATE";
    case LogRecordKind::kPrepare:
      return "PREPARE";
    case LogRecordKind::kCommit:
      return "COMMIT";
    case LogRecordKind::kAbort:
      return "ABORT";
    case LogRecordKind::kReplication:
      return "REPLICATION";
    case LogRecordKind::kEnd:
      return "END";
    case LogRecordKind::kCheckpoint:
      return "CHECKPOINT";
  }
  return "UNKNOWN";
}

Bytes LogRecord::Encode() const {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(kind));
  w.Transaction(tid);
  switch (kind) {
    case LogRecordKind::kUpdate:
      w.Str(server);
      w.Str(object);
      w.Blob(old_value);
      w.Blob(new_value);
      w.U8(is_undo ? 1 : 0);
      break;
    case LogRecordKind::kPrepare:
      w.Site(coordinator);
      w.SiteList(sites);
      w.U8(static_cast<uint8_t>(protocol));
      w.U32(commit_quorum);
      w.U32(abort_quorum);
      break;
    case LogRecordKind::kCommit:
      w.SiteList(sites);
      break;
    case LogRecordKind::kAbort:
    case LogRecordKind::kEnd:
    case LogRecordKind::kCheckpoint:
      break;
    case LogRecordKind::kReplication:
      w.Site(coordinator);
      w.U64(epoch);
      w.U8(decision);
      w.SiteList(sites);
      w.U8(static_cast<uint8_t>(protocol));
      w.U32(commit_quorum);
      w.U32(abort_quorum);
      break;
  }
  return w.Take();
}

Result<LogRecord> LogRecord::Decode(const Bytes& payload) {
  ByteReader r(payload);
  LogRecord rec;
  rec.kind = static_cast<LogRecordKind>(r.U8());
  rec.tid = r.Transaction();
  switch (rec.kind) {
    case LogRecordKind::kUpdate:
      rec.server = r.Str();
      rec.object = r.Str();
      rec.old_value = r.Blob();
      rec.new_value = r.Blob();
      rec.is_undo = r.U8() != 0;
      break;
    case LogRecordKind::kPrepare:
      rec.coordinator = r.Site();
      rec.sites = r.SiteList();
      rec.protocol = static_cast<CommitProtocol>(r.U8());
      rec.commit_quorum = r.U32();
      rec.abort_quorum = r.U32();
      break;
    case LogRecordKind::kCommit:
      rec.sites = r.SiteList();
      break;
    case LogRecordKind::kAbort:
    case LogRecordKind::kEnd:
    case LogRecordKind::kCheckpoint:
      break;
    case LogRecordKind::kReplication:
      rec.coordinator = r.Site();
      rec.epoch = r.U64();
      rec.decision = r.U8();
      rec.sites = r.SiteList();
      rec.protocol = static_cast<CommitProtocol>(r.U8());
      rec.commit_quorum = r.U32();
      rec.abort_quorum = r.U32();
      break;
    default:
      return CorruptionError("unknown log record kind");
  }
  if (!r.ok() || !r.AtEnd()) {
    return CorruptionError("log record decode failed");
  }
  return rec;
}

LogRecord LogRecord::Update(const Tid& tid, std::string server, std::string object,
                            Bytes old_value, Bytes new_value) {
  LogRecord rec;
  rec.kind = LogRecordKind::kUpdate;
  rec.tid = tid;
  rec.server = std::move(server);
  rec.object = std::move(object);
  rec.old_value = std::move(old_value);
  rec.new_value = std::move(new_value);
  return rec;
}

LogRecord LogRecord::UndoUpdate(const Tid& tid, std::string server, std::string object,
                                Bytes old_value, Bytes new_value) {
  LogRecord rec = Update(tid, std::move(server), std::move(object), std::move(old_value),
                         std::move(new_value));
  rec.is_undo = true;
  return rec;
}

LogRecord LogRecord::Prepare(const Tid& tid, SiteId coordinator, std::vector<SiteId> sites,
                             CommitProtocol protocol, uint32_t commit_quorum,
                             uint32_t abort_quorum) {
  LogRecord rec;
  rec.kind = LogRecordKind::kPrepare;
  rec.tid = tid;
  rec.coordinator = coordinator;
  rec.sites = std::move(sites);
  rec.protocol = protocol;
  rec.commit_quorum = commit_quorum;
  rec.abort_quorum = abort_quorum;
  return rec;
}

LogRecord LogRecord::Commit(const Tid& tid, std::vector<SiteId> sites) {
  LogRecord rec;
  rec.kind = LogRecordKind::kCommit;
  rec.tid = tid;
  rec.sites = std::move(sites);
  return rec;
}

LogRecord LogRecord::Abort(const Tid& tid) {
  LogRecord rec;
  rec.kind = LogRecordKind::kAbort;
  rec.tid = tid;
  return rec;
}

LogRecord LogRecord::Replication(const Tid& tid, SiteId coordinator, uint64_t epoch,
                                 uint8_t decision, std::vector<SiteId> sites,
                                 CommitProtocol protocol, uint32_t commit_quorum,
                                 uint32_t abort_quorum) {
  LogRecord rec;
  rec.kind = LogRecordKind::kReplication;
  rec.tid = tid;
  rec.coordinator = coordinator;
  rec.epoch = epoch;
  rec.decision = decision;
  rec.sites = std::move(sites);
  rec.protocol = protocol;
  rec.commit_quorum = commit_quorum;
  rec.abort_quorum = abort_quorum;
  return rec;
}

LogRecord LogRecord::End(const Tid& tid) {
  LogRecord rec;
  rec.kind = LogRecordKind::kEnd;
  rec.tid = tid;
  return rec;
}

LogRecord LogRecord::Checkpoint() {
  LogRecord rec;
  rec.kind = LogRecordKind::kCheckpoint;
  rec.tid = kInvalidTid;
  return rec;
}

}  // namespace camelot
