// Log record model for the common stable-storage log.
//
// One flat struct covers every record kind (fields unused by a kind stay
// empty); records are serialized to a framed binary format with a CRC, and a
// crashed site recovers by replaying the durable prefix of its log.
//
// Record kinds and who writes them:
//   kUpdate       server/disk-manager: old and new value of an object
//                 ("logged as late as possible", Figure 1 step 5)
//   kPrepare      2PC/NBC subordinate (and NBC coordinator, which prepares
//                 before sending the prepare message)
//   kCommit       coordinator at the commit point; subordinate on learning the
//                 outcome (forced or lazy depending on the 3.2 optimization)
//   kAbort        any site, on abort (presumed abort: never forced)
//   kReplication  NBC replication phase: the decision data a subordinate holds
//                 so a commit quorum can be formed
//   kEnd          coordinator after all commit-acks (presumed abort "forget")
#ifndef SRC_WAL_LOG_RECORD_H_
#define SRC_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/codec.h"
#include "src/base/status.h"
#include "src/base/types.h"

namespace camelot {

enum class LogRecordKind : uint8_t {
  kUpdate = 1,
  kPrepare = 2,
  kCommit = 3,
  kAbort = 4,
  kReplication = 5,
  kEnd = 6,
  // Quiescent checkpoint: every page flushed, no live transactions. Recovery
  // replay starts at the LAST checkpoint record.
  kCheckpoint = 7,
};

const char* LogRecordKindName(LogRecordKind kind);

enum class CommitProtocol : uint8_t {
  kTwoPhase = 0,
  kNonBlocking = 1,
  // Gray & Lamport Paxos Commit: per-RM ballot-0 vote instances against a
  // 2F+1 acceptor set co-located on the participant sites. kReplication
  // records double as the acceptors' batched accept records.
  kPaxos = 2,
};

struct LogRecord {
  LogRecordKind kind = LogRecordKind::kUpdate;
  Tid tid;
  Lsn lsn = kInvalidLsn;  // Filled in by StableLog on append / replay.

  // kUpdate.
  std::string server;
  std::string object;
  Bytes old_value;
  Bytes new_value;
  // Compensation log record (CLR): this update IS an undo performed by a live
  // abort. Recovery replays CLRs like any update but never un-does them, and
  // uses them to find which forward records a crash-interrupted abort already
  // compensated.
  bool is_undo = false;

  // kPrepare / kReplication.
  SiteId coordinator = kInvalidSite;
  std::vector<SiteId> sites;  // All participants (NBC prepare carries this).
  CommitProtocol protocol = CommitProtocol::kTwoPhase;
  uint32_t commit_quorum = 0;  // NBC quorum sizes.
  uint32_t abort_quorum = 0;
  uint64_t epoch = 0;  // NBC coordinator epoch.
  uint8_t decision = 0;  // kReplication: replicated tentative decision payload.

  Bytes Encode() const;
  static Result<LogRecord> Decode(const Bytes& payload);

  // Convenience constructors.
  static LogRecord Update(const Tid& tid, std::string server, std::string object, Bytes old_value,
                          Bytes new_value);
  static LogRecord UndoUpdate(const Tid& tid, std::string server, std::string object,
                              Bytes old_value, Bytes new_value);
  static LogRecord Prepare(const Tid& tid, SiteId coordinator, std::vector<SiteId> sites,
                           CommitProtocol protocol, uint32_t commit_quorum, uint32_t abort_quorum);
  static LogRecord Commit(const Tid& tid, std::vector<SiteId> sites);
  static LogRecord Abort(const Tid& tid);
  // A replication / accept record. NBC writes these with its default
  // (kNonBlocking) protocol tag; Paxos acceptors tag kPaxos and carry the
  // quorum sizes so a crashed acceptor restores with the right ballot rules.
  static LogRecord Replication(const Tid& tid, SiteId coordinator, uint64_t epoch,
                               uint8_t decision, std::vector<SiteId> sites,
                               CommitProtocol protocol = CommitProtocol::kNonBlocking,
                               uint32_t commit_quorum = 0, uint32_t abort_quorum = 0);
  static LogRecord End(const Tid& tid);
  static LogRecord Checkpoint();
};

}  // namespace camelot

#endif  // SRC_WAL_LOG_RECORD_H_
