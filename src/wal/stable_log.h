// StableLog: the per-site common log on simulated stable storage.
//
// Appends are buffered in volatile memory; Force() makes everything up to an
// LSN durable by performing a (15 ms) disk write. With group commit enabled, a
// single writer daemon batches all force requests that accumulate while the
// disk is busy into one physical write — the paper's "log batching", without
// which a disk log caps out near 30 forced commits per second.
//
// Records are framed with a self-verifying header (length + payload CRC +
// header CRC), so replay can tell an *expected* torn tail (a crash cut a
// write short: the final frame is incomplete) apart from *interior media
// corruption* (a complete frame whose CRC fails: the disk lost committed
// work). The log is the single point of durability, so — like Camelot's
// duplexed common log — it can optionally be mirrored on two simulated log
// disks, forced in parallel; a frame is durable as long as either copy is
// intact, and replay reads whichever mirror's frame passes CRC, repairing
// the other.
//
// A crash discards the volatile tail; recovery replays the durable prefix
// and truncates any torn tail so later appends extend a clean log.
#ifndef SRC_WAL_STABLE_LOG_H_
#define SRC_WAL_STABLE_LOG_H_

#include <deque>
#include <string>
#include <memory>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/storage_faults.h"
#include "src/sim/channel.h"
#include "src/stats/cost_ledger.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/wal/log_record.h"

namespace camelot {

struct LogConfig {
  // One physical log-disk write (Table 2: log force 15 ms).
  SimDuration force_latency = Usec(15000);
  // Batch multiple force requests into one disk write.
  bool group_commit = true;
  // Extra wait before a batched write starts, to accumulate more commits
  // (group commit timers, Helland et al.). 0 = batch only what queued while
  // the disk was busy.
  SimDuration batch_window = 0;
  // Duplex the log across two mirrored log disks (Camelot's duplexed common
  // log). Both mirrors are forced in parallel — same latency — and replay
  // salvages any frame that is intact on either mirror.
  bool duplex = false;
  // Media faults on the log disk(s); see src/base/storage_faults.h.
  StorageFaultConfig faults;
  // How many checkpoint generations WriteCheckpoint retains before reclaiming
  // log space. 1 reclaims everything before the newest checkpoint (minimum
  // footprint); 2 keeps one previous interval on disk so media recovery can
  // fall back past the last checkpoint when rebuilding a page whose updates
  // were checkpointed away (see RecoveryManager::RebuildPage).
  int checkpoint_generations_retained = 1;
};

struct LogCounters {
  uint64_t appends = 0;
  uint64_t force_requests = 0;
  uint64_t disk_writes = 0;      // Physical forces actually performed.
  uint64_t mirror_writes = 0;    // Physical writes counting each mirror.
  uint64_t bytes_written = 0;
  uint64_t records_batched = 0;  // Force requests satisfied by another's write.
  uint64_t write_stalls = 0;     // Forces that hit a write stall fault.
  uint64_t torn_writes_injected = 0;
  uint64_t bit_rot_injected = 0;
  uint64_t frames_salvaged = 0;  // Replay frames rebuilt from the other mirror.
  uint64_t interior_corruption = 0;  // Unsalvageable interior frames seen.
};

// How a replay scan of the durable log ended.
enum class LogScanEnd {
  kCleanEnd,             // Every durable byte parsed into valid frames.
  kTornTail,             // Final frame incomplete: expected after a crash.
  kInteriorCorruption,   // A complete frame failed CRC on every mirror: the
                         // media lost committed work. Recovery must fail
                         // loudly rather than silently truncate replay here.
};

struct LogReplay {
  std::vector<LogRecord> records;
  LogScanEnd end = LogScanEnd::kCleanEnd;
  size_t frames_salvaged = 0;  // Frames unreadable on one mirror, rebuilt.
};

class StableLog {
 public:
  StableLog(Scheduler& sched, LogConfig config);

  // Appends a record to the volatile buffer; returns its end-exclusive LSN.
  // The record is durable once durable_lsn() >= returned LSN.
  Lsn Append(const LogRecord& record);

  // Appends and immediately forces (convenience for the single-record case).
  Async<Lsn> AppendAndForce(const LogRecord& record);

  // Makes everything up to `upto` durable. Returns true once durable_lsn() >=
  // upto; returns false if a crash destroyed the tail first (the caller's
  // world is gone and it must not treat the record as durable).
  Async<bool> Force(Lsn upto);

  Lsn durable_lsn() const { return Lsn{durable_bytes_}; }
  Lsn buffered_lsn() const { return Lsn{durable_bytes_ + static_cast<uint64_t>(tail_.size())}; }
  bool IsDurable(Lsn lsn) const { return lsn.value <= durable_bytes_; }

  // Crash: the volatile tail is lost. (The durable bytes survive — they model
  // the disk.) A write in flight leaves an independently torn prefix on each
  // mirror. Pending force waiters are abandoned by their crashed callers.
  void OnCrash();

  // Replays the durable prefix (stops at the first bad frame). Prefer
  // ReplayDurable in recovery paths: it also classifies how the scan ended,
  // repairs mirror damage, and truncates a torn tail.
  std::vector<LogRecord> ReadDurable() { return Replay(/*repair=*/false).records; }

  // Full recovery-grade replay: salvages frames from either mirror (copying
  // the good bytes over the bad mirror), distinguishes a torn tail from
  // interior corruption, and — unless the scan hit interior corruption —
  // truncates trailing torn garbage so subsequent appends extend a clean log.
  LogReplay ReplayDurable() { return Replay(/*repair=*/true); }

  // Testing hook: flip a byte of one mirror's durable image.
  void CorruptDurableByte(size_t offset, int mirror = 0);

  // Saves the durable image (with its base offset) to a host file, and loads
  // one back — lets a world's stable storage outlive the process (e.g. the
  // shell's `save`/`load`). Only the durable bytes persist, exactly as a real
  // disk would; the primary mirror is saved and a load seeds both mirrors.
  // Returns false on I/O failure or a corrupt image.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  // Physically reclaims the durable prefix before `lsn` (call only with the
  // LSN of a checkpoint record boundary: replay must still see a whole-frame
  // prefix). LSNs remain globally monotonic; ReadDurable returns records
  // after the reclaimed prefix.
  void ReclaimBefore(Lsn lsn);
  uint64_t reclaimed_bytes() const { return base_offset_; }

  // Fault-injection points around the physical log write: the harness wires a
  // per-site handle so crash schedules can cut a force short at exactly
  // "wal.force.before_write" / "wal.force.after_write" (see base/failpoint.h).
  void set_failpoints(Failpoints failpoints) { failpoints_ = std::move(failpoints); }

  // Site-level cost shadow: every Append records wal/append/spool and every
  // Force request records wal/force/force (protocol-level attribution happens
  // in TranMan, which knows the family and role).
  void set_cost_recorder(CostRecorder recorder) { cost_recorder_ = recorder; }

  void set_group_commit(bool on) { config_.group_commit = on; }
  bool group_commit() const { return config_.group_commit; }
  // Enables/changes media faults mid-run (e.g. after a clean loading phase).
  void set_faults(const StorageFaultConfig& faults) { config_.faults = faults; }
  bool duplex() const { return config_.duplex; }
  const LogConfig& config() const { return config_; }
  const LogCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = LogCounters{}; }

 private:
  struct ForceWaiter {
    uint64_t upto;
    std::shared_ptr<Channel<bool>> done;
  };
  // Outcome of probing one mirror for a frame at a given offset.
  enum class FrameProbe { kValid, kTorn, kBad };

  int active_mirrors() const { return config_.duplex ? 2 : 1; }
  Async<void> WriterDaemon();
  // One physical write's worth of simulated latency, including stall faults.
  SimDuration DrawWriteLatency();
  // Moves the volatile tail up to `target` into every mirror's durable image
  // and applies write-time media faults.
  void Publish(uint64_t target);
  // Classifies the frame at `pos` (image-relative) in `image`; on kValid,
  // `frame_len` receives the total framed length (header + payload).
  FrameProbe Probe(const Bytes& image, size_t pos, size_t* frame_len) const;
  LogReplay Replay(bool repair);

  // Evaluates a wal.force.* failpoint; honors kDelay inline (kCrash is applied
  // by the handle). Returns true if a crash fired while we were at the point.
  Async<bool> AtWritePoint(const char* point, uint64_t epoch);

  Scheduler& sched_;
  LogConfig config_;
  Failpoints failpoints_;
  CostRecorder cost_recorder_;
  Bytes mirror_[2];          // Disk image(s), starting at base_offset_.
                             // mirror_[1] is live only when duplexing.
  uint64_t base_offset_ = 0; // Bytes reclaimed from the front (checkpointing).
  uint64_t durable_bytes_ = 0;
  Bytes tail_;               // Volatile buffer beyond durable_bytes_.
  SimMutex disk_;            // The disk arm (non-group-commit path).
  Rng fault_rng_;            // Private stream: fault draws stay reproducible.
  bool writer_running_ = false;
  uint64_t crash_epoch_ = 0;     // Bumped on crash: in-flight writes abandon.
  uint64_t inflight_target_ = 0; // End LSN of the write in progress (0 = none).
  std::deque<ForceWaiter> waiters_;
  LogCounters counters_;
};

}  // namespace camelot

#endif  // SRC_WAL_STABLE_LOG_H_
