// StableLog: the per-site common log on simulated stable storage.
//
// Appends are buffered in volatile memory; Force() makes everything up to an
// LSN durable by performing a (15 ms) disk write. With group commit enabled, a
// single writer daemon batches all force requests that accumulate while the
// disk is busy into one physical write — the paper's "log batching", without
// which a disk log caps out near 30 forced commits per second.
//
// A crash discards the volatile tail; recovery replays the durable prefix
// (framed records with CRCs; a torn or corrupt frame ends replay).
#ifndef SRC_WAL_STABLE_LOG_H_
#define SRC_WAL_STABLE_LOG_H_

#include <deque>
#include <string>
#include <memory>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/scheduler.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/wal/log_record.h"

namespace camelot {

struct LogConfig {
  // One physical log-disk write (Table 2: log force 15 ms).
  SimDuration force_latency = Usec(15000);
  // Batch multiple force requests into one disk write.
  bool group_commit = true;
  // Extra wait before a batched write starts, to accumulate more commits
  // (group commit timers, Helland et al.). 0 = batch only what queued while
  // the disk was busy.
  SimDuration batch_window = 0;
};

struct LogCounters {
  uint64_t appends = 0;
  uint64_t force_requests = 0;
  uint64_t disk_writes = 0;      // Physical forces actually performed.
  uint64_t bytes_written = 0;
  uint64_t records_batched = 0;  // Force requests satisfied by another's write.
};

class StableLog {
 public:
  StableLog(Scheduler& sched, LogConfig config);

  // Appends a record to the volatile buffer; returns its end-exclusive LSN.
  // The record is durable once durable_lsn() >= returned LSN.
  Lsn Append(const LogRecord& record);

  // Appends and immediately forces (convenience for the single-record case).
  Async<Lsn> AppendAndForce(const LogRecord& record);

  // Makes everything up to `upto` durable. Returns true once durable_lsn() >=
  // upto; returns false if a crash destroyed the tail first (the caller's
  // world is gone and it must not treat the record as durable).
  Async<bool> Force(Lsn upto);

  Lsn durable_lsn() const { return Lsn{durable_bytes_}; }
  Lsn buffered_lsn() const { return Lsn{durable_bytes_ + static_cast<uint64_t>(tail_.size())}; }
  bool IsDurable(Lsn lsn) const { return lsn.value <= durable_bytes_; }

  // Crash: the volatile tail is lost. (The durable bytes survive — they model
  // the disk.) Pending force waiters are abandoned by their crashed callers.
  void OnCrash();

  // Replays the durable prefix. Stops cleanly at the first torn/corrupt frame
  // (which a crash mid-write can legitimately produce).
  std::vector<LogRecord> ReadDurable() const;

  // Testing hook: flip a byte of the durable image to simulate media corruption.
  void CorruptDurableByte(size_t offset);

  // Saves the durable image (with its base offset) to a host file, and loads
  // one back — lets a world's stable storage outlive the process (e.g. the
  // shell's `save`/`load`). Only the durable bytes persist, exactly as a real
  // disk would. Returns false on I/O failure or a corrupt image.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  // Physically reclaims the durable prefix before `lsn` (call only with the
  // LSN of a checkpoint record boundary: replay must still see a whole-frame
  // prefix). LSNs remain globally monotonic; ReadDurable returns records
  // after the reclaimed prefix.
  void ReclaimBefore(Lsn lsn);
  uint64_t reclaimed_bytes() const { return base_offset_; }

  void set_group_commit(bool on) { config_.group_commit = on; }
  bool group_commit() const { return config_.group_commit; }
  const LogConfig& config() const { return config_; }
  const LogCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = LogCounters{}; }

 private:
  struct ForceWaiter {
    uint64_t upto;
    std::shared_ptr<Channel<bool>> done;
  };

  Async<void> WriterDaemon();
  // Moves the volatile tail up to `target` into the durable image.
  void Publish(uint64_t target);

  Scheduler& sched_;
  LogConfig config_;
  Bytes durable_;            // The disk image (starting at base_offset_).
  uint64_t base_offset_ = 0; // Bytes reclaimed from the front (checkpointing).
  uint64_t durable_bytes_ = 0;
  Bytes tail_;               // Volatile buffer beyond durable_bytes_.
  SimMutex disk_;            // The disk arm (non-group-commit path).
  bool writer_running_ = false;
  uint64_t crash_epoch_ = 0;     // Bumped on crash: in-flight writes abandon.
  uint64_t inflight_target_ = 0; // End LSN of the write in progress (0 = none).
  std::deque<ForceWaiter> waiters_;
  LogCounters counters_;
};

}  // namespace camelot

#endif  // SRC_WAL_STABLE_LOG_H_
