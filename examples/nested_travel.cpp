// Nested transactions (Moss model): a travel booking with partial failure.
//
// A trip books a flight, a hotel, and a rental car as NESTED transactions
// under one top-level transaction, each against a server on a different site.
// The car rental fails (no cars left) and its nested transaction aborts —
// undoing ONLY the car subtree — while the flight and hotel bookings, already
// nested-committed and anti-inherited by the parent, commit atomically with
// the top-level transaction. "In Camelot, transactions can be arbitrarily
// nested and distributed. This permits programs to be written more
// naturally" (Section 1).
//
// Run:  ./build/examples/nested_travel
#include <cstdio>
#include <string>

#include "src/harness/world.h"

using namespace camelot;

namespace {

// Books `count` units of `item` at `server` inside nested transaction `tid`.
Async<Status> Book(AppClient& app, const Tid& tid, const std::string& server,
                   const std::string& item, int64_t count) {
  auto available = co_await app.ReadInt(tid, server, item);
  if (!available.ok()) {
    co_return available.status();
  }
  if (*available < count) {
    co_return AbortedError("sold out: " + item);
  }
  Status st = co_await app.WriteInt(tid, server, item, *available - count);
  co_return st;
}

Async<void> PlanTrip(World& world, bool* trip_committed) {
  AppClient app(world.site(0));
  Scheduler& clock = world.sched();
  auto top = co_await app.Begin();
  const Tid trip = *top;
  std::printf("[%7.1f ms] trip = %s (top-level)\n", ToMs(clock.now()),
              ToString(trip).c_str());

  // --- Flight (nested transaction #1) -------------------------------------
  auto flight = co_await app.Begin(trip);
  Status booked = co_await Book(app, *flight, "airline", "seats", 2);
  if (booked.ok()) {
    co_await app.Commit(*flight);  // Nested commit: seats anti-inherited by the trip.
    std::printf("[%7.1f ms] flight booked (nested commit -> effects now belong to "
                "the trip)\n", ToMs(clock.now()));
  }

  // --- Hotel (nested transaction #2) ---------------------------------------
  auto hotel = co_await app.Begin(trip);
  booked = co_await Book(app, *hotel, "hotel", "rooms", 1);
  if (booked.ok()) {
    co_await app.Commit(*hotel);
    std::printf("[%7.1f ms] hotel booked\n", ToMs(clock.now()));
  }

  // --- Rental car (nested transaction #3): FAILS ----------------------------
  auto car = co_await app.Begin(trip);
  booked = co_await Book(app, *car, "rentacar", "cars", 1);
  if (!booked.ok()) {
    std::printf("[%7.1f ms] car rental failed (%s) -> nested ABORT undoes only the "
                "car subtree\n",
                ToMs(clock.now()), booked.ToString().c_str());
    co_await app.Abort(*car);
  } else {
    co_await app.Commit(*car);
  }

  // The trip proceeds without the car: commit the whole family. One atomic
  // distributed commit covers the flight and hotel updates on their sites.
  Status st = co_await app.Commit(trip);
  *trip_committed = st.ok();
  std::printf("[%7.1f ms] trip commit: %s\n", ToMs(clock.now()), st.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== Nested transactions: a travel booking with partial failure ===\n\n");
  WorldConfig cfg;
  cfg.site_count = 3;
  World world(cfg);
  world.AddServer(0, "airline")->CreateObjectForSetup("seats", EncodeInt64(100));
  world.AddServer(1, "hotel")->CreateObjectForSetup("rooms", EncodeInt64(5));
  world.AddServer(2, "rentacar")->CreateObjectForSetup("cars", EncodeInt64(0));  // Sold out!
  std::printf("airline: 100 seats | hotel: 5 rooms | rentacar: 0 cars (sold out)\n\n");

  bool trip_committed = false;
  world.sched().Spawn(PlanTrip(world, &trip_committed));
  world.RunUntilIdle();

  std::printf("\n--- Final inventory (read transactionally) ---\n");
  AppClient reader(world.site(0));
  struct Check {
    const char* server;
    const char* item;
    int64_t expect;
  };
  bool all_ok = trip_committed;
  for (const Check& c : {Check{"airline", "seats", 98}, Check{"hotel", "rooms", 4},
                         Check{"rentacar", "cars", 0}}) {
    auto v = world.RunSync([](AppClient& app, std::string srv, std::string item)
                               -> Async<int64_t> {
      auto begin = co_await app.Begin();
      auto value = co_await app.ReadInt(*begin, srv, item);
      co_await app.Commit(*begin);
      co_return value.value_or(-1);
    }(reader, c.server, c.item));
    const bool ok = v.value_or(-1) == c.expect;
    all_ok = all_ok && ok;
    std::printf("%-9s %-6s = %lld (expected %lld) %s\n", c.server, c.item,
                static_cast<long long>(v.value_or(-1)), static_cast<long long>(c.expect),
                ok ? "ok" : "WRONG");
  }
  std::printf("\n%s\n", all_ok
                            ? "Flight and hotel committed atomically; the aborted car "
                              "subtree left no trace."
                            : "*** UNEXPECTED STATE — BUG ***");
  return all_ok ? 0 : 1;
}
