// Quickstart: the smallest complete Camelot-TM program.
//
// Builds a two-site world, creates a data server with one recoverable object
// per site, and runs the paper's Figure-1 flow end to end: begin-transaction,
// transactional operations (local and remote), commit with two-phase commit,
// and a read-back. Prints the major events with virtual timestamps.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/harness/world.h"

using namespace camelot;

namespace {

Async<void> Quickstart(World& world) {
  Scheduler& clock = world.sched();
  AppClient app(world.site(0));
  auto say = [&](const char* msg) { std::printf("[%7.1f ms] %s\n", ToMs(clock.now()), msg); };

  // Figure 1, event 2: get a transaction identifier from the TranMan.
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    std::printf("begin failed: %s\n", begin.status().ToString().c_str());
    co_return;
  }
  const Tid tid = *begin;
  std::printf("[%7.1f ms] begin-transaction -> %s\n", ToMs(clock.now()),
              ToString(tid).c_str());

  // Events 3-6: operations. The first operation at each server makes it join
  // the transaction; the Communication Manager spies on the remote call so
  // the coordinator learns site 1 is involved.
  Status w1 = co_await app.WriteInt(tid, "server:local", "greeting", 1989);
  say(w1.ok() ? "local write OK (server:local joined the transaction)"
              : "local write FAILED");
  Status w2 = co_await app.WriteInt(tid, "server:remote", "greeting", 2026);
  say(w2.ok() ? "remote write OK (~29 ms: the Camelot RPC path of Section 4.1)"
              : "remote write FAILED");

  // Events 7-10: commit. One log force at the subordinate (prepare), one at
  // the coordinator (the commit point); the subordinate's own commit record
  // is written lazily and the ack piggybacked — the Section 3.2 optimization.
  Status committed = co_await app.Commit(tid, CommitOptions::Optimized());
  say(committed.ok() ? "commit-transaction OK (optimized presumed-abort 2PC)"
                     : "commit FAILED");

  // Read back in a fresh transaction.
  auto check = co_await app.Begin();
  auto local_value = co_await app.ReadInt(*check, "server:local", "greeting");
  auto remote_value = co_await app.ReadInt(*check, "server:remote", "greeting");
  co_await app.Commit(*check);
  std::printf("[%7.1f ms] read back: local=%lld remote=%lld\n", ToMs(clock.now()),
              static_cast<long long>(local_value.value_or(-1)),
              static_cast<long long>(remote_value.value_or(-1)));

  std::printf("\nLog records forced at site 0 (coordinator): %llu disk write(s)\n",
              static_cast<unsigned long long>(world.site(0).log().counters().disk_writes));
  std::printf("Log records forced at site 1 (subordinate): %llu disk write(s)\n",
              static_cast<unsigned long long>(world.site(1).log().counters().disk_writes));
}

}  // namespace

int main() {
  std::printf("=== Camelot-TM quickstart: one distributed transaction ===\n\n");
  WorldConfig cfg;
  cfg.site_count = 2;
  World world(cfg);
  world.AddServer(0, "server:local")->CreateObjectForSetup("greeting", EncodeInt64(0));
  world.AddServer(1, "server:remote")->CreateObjectForSetup("greeting", EncodeInt64(0));

  world.sched().Spawn(Quickstart(world));
  world.RunUntilIdle();
  return 0;
}
