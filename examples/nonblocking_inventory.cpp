// Non-blocking commitment: a warehouse reservation that survives the death of
// its coordinator.
//
// An order reserves stock at three warehouses (one per site) and commits with
// the NON-BLOCKING protocol (Section 3.3). The coordinator crashes right
// after the replication phase put commit-intent at a quorum; under two-phase
// commit the warehouses would now be BLOCKED holding locks until the
// coordinator returned. Instead they time out, elect themselves coordinators
// (multiple simultaneous coordinators are fine), read the quorum's
// replicated decision, and finish the COMMIT on their own. The restarted
// coordinator adopts the outcome from their tombstones.
//
// Run:  ./build/examples/nonblocking_inventory
#include <cstdio>
#include <string>

#include "src/harness/world.h"

using namespace camelot;

namespace {
std::string Warehouse(int i) { return "warehouse:" + std::to_string(i); }
}  // namespace

int main() {
  std::printf("=== Non-blocking commit: order reservation vs coordinator crash ===\n\n");
  WorldConfig cfg;
  cfg.site_count = 3;
  cfg.tranman.outcome_timeout = Usec(600000);
  cfg.tranman.retry_interval = Usec(400000);
  World world(cfg);
  for (int i = 0; i < 3; ++i) {
    world.AddServer(i, Warehouse(i))->CreateObjectForSetup("widgets", EncodeInt64(10));
  }
  std::printf("Each of 3 warehouses stocks 10 widgets. Order: reserve 4 from each,\n");
  std::printf("committed with the non-blocking protocol (Qc=2, Qa=2 of 3 sites).\n\n");

  std::optional<Status> order_status;
  world.sched().Spawn([](World& w, std::optional<Status>* out) -> Async<void> {
    AppClient app(w.site(0));
    auto begin = co_await app.Begin();
    const Tid tid = *begin;
    for (int i = 0; i < 3; ++i) {
      auto stock = co_await app.ReadInt(tid, Warehouse(i), "widgets");
      if (!stock.ok() || *stock < 4) {
        co_await app.Abort(tid);
        *out = AbortedError("stock check failed");
        co_return;
      }
      co_await app.WriteInt(tid, Warehouse(i), "widgets", *stock - 4);
    }
    std::printf("[%7.1f ms] all three reservations written; committing (non-blocking)\n",
                ToMs(w.sched().now()));
    *out = co_await app.Commit(tid, CommitOptions::NonBlocking());
  }(world, &order_status));

  // Kill the coordinator once both subordinates hold replication records
  // (commit intent at a quorum) but before they learn the outcome.
  auto watcher = std::make_shared<std::function<void()>>();
  *watcher = [&world, watcher] {
    int replicated = 0;
    for (int s = 1; s < 3; ++s) {
      for (const auto& rec : world.site(s).log().ReadDurable()) {
        if (rec.kind == LogRecordKind::kReplication) {
          ++replicated;
          break;
        }
      }
    }
    if (replicated == 2) {
      std::printf("[%7.1f ms] *** coordinator CRASHES (commit intent replicated at a "
                  "quorum, outcome unsent) ***\n",
                  ToMs(world.sched().now()));
      world.Crash(0);
      return;
    }
    world.sched().Post(Usec(300), *watcher);
  };
  world.sched().Post(Usec(300), *watcher);

  world.RunUntilIdle();

  std::printf("\n--- After the subordinates' takeover (coordinator still down) ---\n");
  for (int s = 1; s < 3; ++s) {
    AppClient probe(world.site(s));
    auto stock = world.RunSync([](AppClient& app, std::string wh) -> Async<int64_t> {
      auto begin = co_await app.Begin();
      auto value = co_await app.ReadInt(*begin, wh, "widgets");
      co_await app.Commit(*begin);
      co_return value.value_or(-1);
    }(probe, Warehouse(s)));
    std::printf("warehouse %d: stock=%lld, locks held=%zu, takeovers run=%llu\n", s,
                static_cast<long long>(stock.value_or(-1)),
                world.site(s).server(Warehouse(s))->locks().held_lock_count(),
                static_cast<unsigned long long>(world.site(s).tranman().counters().takeovers));
  }
  std::printf("(stock=6 at both: the order COMMITTED without its coordinator —\n"
              " no blocking, exactly the protocol's reason to exist)\n");

  std::printf("\n[%7.1f ms] coordinator restarts; recovery + status queries converge it\n",
              ToMs(world.sched().now()));
  world.Restart(0);
  world.RunUntilIdle();

  AppClient reader(world.site(0));
  auto local = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    auto value = co_await app.ReadInt(*begin, Warehouse(0), "widgets");
    co_await app.Commit(*begin);
    co_return value.value_or(-1);
  }(reader));
  std::printf("warehouse 0 (recovered coordinator): stock=%lld\n",
              static_cast<long long>(local.value_or(-1)));
  const bool ok = local.value_or(-1) == 6;
  std::printf("\n%s\n", ok ? "All three warehouses agree: reservation committed exactly once."
                           : "*** INCONSISTENT STOCK — BUG ***");
  std::printf("\nCost of the insurance (paper Section 4.3): the non-blocking protocol's\n"
              "critical path is 4 log forces + 5 messages vs two-phase's 2 + 3 — use it\n"
              "for transactions whose value exceeds ~2x commit latency (see\n"
              "bench_fig3_nonblocking).\n");
  return ok ? 0 : 1;
}
