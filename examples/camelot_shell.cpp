// camelot_shell: a scriptable console for driving a Camelot world.
//
// Reads commands from stdin (or runs a built-in demo script when stdin is a
// terminal/empty) and executes them against a multi-site world. This is the
// fastest way to poke at the system interactively:
//
//   sites 3                  # build a 3-site world (once, first command)
//   server 1 bank            # data server "bank" on site 1
//   create bank gold 500     # recoverable object
//   begin t1                 # named transaction handles
//   write t1 bank gold 450
//   read  t1 bank gold
//   commit t1 [nbc|paxos [F]]  # optimized 2PC by default; "nbc" = non-blocking,
//                            # "paxos" = Paxos Commit (default F = 1)
//   abort t1
//   crash 1 / restart 1      # failure injection
//   partition 0 | 1 2        # groups separated by '|'
//   heal
//   run 500                  # advance 500 ms of virtual time
//   stats                    # per-site operational counters
//   save /tmp/snap           # cold-backup all sites' stable storage
//   load /tmp/snap           # restore it (runs recovery)
//
// Example:  ./build/examples/camelot_shell < my_script.txt
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/world.h"

using namespace camelot;

namespace {

struct Shell {
  std::unique_ptr<World> world;
  std::map<std::string, Tid> txns;

  World& W() {
    if (!world) {
      WorldConfig cfg;
      cfg.site_count = 2;
      world = std::make_unique<World>(cfg);
    }
    return *world;
  }

  template <typename T>
  std::optional<T> Run(Async<T> task) {
    // Drive (not RunSync): transactions stay open between shell commands, so
    // the event queue never goes fully idle while their watchers are armed.
    return W().Drive(std::move(task));
  }

  bool Execute(const std::string& line);
};

bool Shell::Execute(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') {
    return true;
  }
  auto vtime = [&] { return ToMs(W().sched().now()); };

  if (cmd == "sites") {
    int n = 2;
    in >> n;
    WorldConfig cfg;
    cfg.site_count = n;
    world = std::make_unique<World>(cfg);
    std::printf("[%8.1f ms] world with %d sites\n", 0.0, n);
  } else if (cmd == "server") {
    int site;
    std::string name;
    in >> site >> name;
    W().AddServer(site, name);
    std::printf("[%8.1f ms] server '%s' on site %d\n", vtime(), name.c_str(), site);
  } else if (cmd == "create") {
    std::string server, object;
    int64_t value;
    in >> server >> object >> value;
    for (int i = 0; i < W().site_count(); ++i) {
      if (DataServer* s = W().site(i).server(server)) {
        s->CreateObjectForSetup(object, EncodeInt64(value));
        std::printf("[%8.1f ms] %s/%s = %lld\n", vtime(), server.c_str(), object.c_str(),
                    static_cast<long long>(value));
        return true;
      }
    }
    std::printf("error: no such server '%s'\n", server.c_str());
  } else if (cmd == "begin") {
    std::string handle;
    in >> handle;
    AppClient app(W().site(0));
    auto tid = Run([](AppClient& a) -> Async<Result<Tid>> {
      auto r = co_await a.Begin();
      co_return r;
    }(app));
    if (tid && tid->ok()) {
      txns[handle] = **tid;
      std::printf("[%8.1f ms] %s = %s\n", vtime(), handle.c_str(), ToString(**tid).c_str());
    } else {
      std::printf("error: begin failed\n");
    }
  } else if (cmd == "write" || cmd == "read") {
    std::string handle, server, object;
    in >> handle >> server >> object;
    if (!txns.count(handle)) {
      std::printf("error: unknown transaction '%s'\n", handle.c_str());
      return true;
    }
    AppClient app(W().site(0));
    if (cmd == "write") {
      int64_t value;
      in >> value;
      auto st = Run([](AppClient& a, Tid t, std::string s, std::string o,
                       int64_t v) -> Async<Status> {
        Status r = co_await a.WriteInt(t, s, o, v);
        co_return r;
      }(app, txns[handle], server, object, value));
      std::printf("[%8.1f ms] write %s/%s=%lld: %s\n", vtime(), server.c_str(), object.c_str(),
                  static_cast<long long>(value),
                  st ? st->ToString().c_str() : "incomplete");
    } else {
      auto v = Run([](AppClient& a, Tid t, std::string s, std::string o)
                       -> Async<Result<int64_t>> {
        auto r = co_await a.ReadInt(t, s, o);
        co_return r;
      }(app, txns[handle], server, object));
      if (v && v->ok()) {
        std::printf("[%8.1f ms] read %s/%s -> %lld\n", vtime(), server.c_str(), object.c_str(),
                    static_cast<long long>(**v));
      } else {
        std::printf("[%8.1f ms] read %s/%s FAILED: %s\n", vtime(), server.c_str(),
                    object.c_str(), v ? v->status().ToString().c_str() : "incomplete");
      }
    }
  } else if (cmd == "commit" || cmd == "abort") {
    std::string handle, proto;
    in >> handle >> proto;
    if (!txns.count(handle)) {
      std::printf("error: unknown transaction '%s'\n", handle.c_str());
      return true;
    }
    AppClient app(W().site(0));
    CommitOptions options = CommitOptions::Optimized();
    if (proto == "nbc") {
      options = CommitOptions::NonBlocking();
    } else if (proto == "paxos") {
      uint32_t f = 1;
      if (!(in >> f)) {
        f = 1;  // A failed extraction zeroes f; a bare "paxos" means F = 1.
        in.clear();
      }
      options = CommitOptions::Paxos(f);
    }
    auto st = Run([](AppClient& a, Tid t, bool commit, CommitOptions o) -> Async<Status> {
      Status r;
      if (commit) {
        r = co_await a.Commit(t, o);
      } else {
        r = co_await a.Abort(t);
      }
      co_return r;
    }(app, txns[handle], cmd == "commit", options));
    std::printf("[%8.1f ms] %s %s: %s\n", vtime(), cmd.c_str(), handle.c_str(),
                st ? st->ToString().c_str() : "incomplete (blocked?)");
    txns.erase(handle);
  } else if (cmd == "crash") {
    int site;
    in >> site;
    W().Crash(site);
    std::printf("[%8.1f ms] site %d CRASHED\n", vtime(), site);
  } else if (cmd == "restart") {
    int site;
    in >> site;
    W().Restart(site);
    W().RunFor(Sec(8));  // Let recovery and in-doubt resolution settle.
    std::printf("[%8.1f ms] site %d restarted and recovered\n", vtime(), site);
  } else if (cmd == "partition") {
    std::vector<std::vector<SiteId>> groups(1);
    std::string tok;
    while (in >> tok) {
      if (tok == "|") {
        groups.emplace_back();
      } else {
        groups.back().push_back(SiteId{static_cast<uint32_t>(std::stoul(tok))});
      }
    }
    const Status st = W().net().SetPartition(groups);
    if (st.ok()) {
      std::printf("[%8.1f ms] partition installed (%zu groups)\n", vtime(), groups.size());
    } else {
      std::printf("[%8.1f ms] partition rejected: %s\n", vtime(), st.ToString().c_str());
    }
  } else if (cmd == "heal") {
    W().net().ClearPartition();
    std::printf("[%8.1f ms] partition healed\n", vtime());
  } else if (cmd == "run") {
    int64_t ms = 100;
    in >> ms;
    W().RunFor(Msec(static_cast<double>(ms)));
    std::printf("[%8.1f ms] advanced\n", vtime());
  } else if (cmd == "save") {
    std::string prefix;
    in >> prefix;
    bool ok = true;
    for (int i = 0; i < W().site_count(); ++i) {
      const std::string base = prefix + ".site" + std::to_string(i);
      ok = ok && W().site(i).log().SaveToFile(base + ".log");
      ok = ok && W().site(i).diskmgr().SaveToFile(base + ".data");
    }
    std::printf("[%8.1f ms] stable storage saved to %s.site*.{log,data}: %s\n", vtime(),
                prefix.c_str(), ok ? "ok" : "FAILED");
  } else if (cmd == "load") {
    std::string prefix;
    in >> prefix;
    bool ok = true;
    for (int i = 0; i < W().site_count(); ++i) {
      const std::string base = prefix + ".site" + std::to_string(i);
      W().Crash(i);
      ok = ok && W().site(i).log().LoadFromFile(base + ".log");
      ok = ok && W().site(i).diskmgr().LoadFromFile(base + ".data");
      W().Restart(i);  // Recovery reconciles the loaded log and data disk.
    }
    W().RunFor(Sec(5));
    txns.clear();
    std::printf("[%8.1f ms] stable storage loaded from %s.site*: %s\n", vtime(),
                prefix.c_str(), ok ? "ok" : "FAILED");
  } else if (cmd == "stats") {
    std::fputs(W().StatsReport().c_str(), stdout);
  } else if (cmd == "quit" || cmd == "exit") {
    return false;
  } else {
    std::printf("unknown command '%s'\n", cmd.c_str());
  }
  return true;
}

const char* kDemoScript = R"(# Built-in demo: distributed commit, a crash, and recovery.
sites 3
server 0 bank
server 1 bank2
server 2 bank3
create bank gold 500
create bank2 gold 500
create bank3 gold 500
begin t1
write t1 bank gold 450
write t1 bank2 gold 550
commit t1
begin t2
read t2 bank3 gold
commit t2
crash 1
restart 1
begin t3
read t3 bank2 gold
commit t3
stats
)";

}  // namespace

int main() {
  Shell shell;
  const bool interactive = isatty(0);
  if (interactive) {
    std::printf("no script on stdin: running the built-in demo\n\n");
    std::istringstream demo(kDemoScript);
    std::string line;
    while (std::getline(demo, line)) {
      std::printf(">> %s\n", line.c_str());
      if (!shell.Execute(line)) {
        break;
      }
    }
    return 0;
  }
  std::string line;
  bool any = false;
  while (std::getline(std::cin, line)) {
    any = true;
    if (!shell.Execute(line)) {
      break;
    }
  }
  if (!any) {
    std::istringstream demo(kDemoScript);
    while (std::getline(demo, line)) {
      std::printf(">> %s\n", line.c_str());
      if (!shell.Execute(line)) {
        break;
      }
    }
  }
  return 0;
}
