// Operator console: heuristic resolution of a blocked transaction.
//
// Demonstrates the failure mode the non-blocking protocol exists to avoid —
// and the pragmatic LU 6.2-style escape hatch the paper's Section 5 discusses.
// A two-phase-commit subordinate is stranded in the window of vulnerability
// (prepared, coordinator dead, locks held, status queries unanswered). An
// operator inspects the site and forces an outcome with HeuristicResolve;
// later, the recovered coordinator's real outcome reveals whether the guess
// caused heuristic damage.
//
// Run:  ./build/examples/blocked_operator
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "src/harness/world.h"

using namespace camelot;

int main() {
  std::printf("=== Operator console: a blocked transaction and the heuristic escape ===\n\n");
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.tranman.outcome_timeout = Usec(500000);
  World world(cfg);
  world.AddServer(0, "hq")->CreateObjectForSetup("ledger", EncodeInt64(1000));
  world.AddServer(1, "branch")->CreateObjectForSetup("ledger", EncodeInt64(1000));

  // A distributed update; the coordinator dies AFTER forcing its commit
  // record but before the subordinate learns the outcome. The truth is
  // COMMIT, but the subordinate cannot know that.
  auto watcher = std::make_shared<std::function<void()>>();
  *watcher = [&world, watcher] {
    for (const auto& rec : world.site(0).log().ReadDurable()) {
      if (rec.kind == LogRecordKind::kCommit) {
        std::printf("[%7.1f ms] coordinator crashes just after its commit point\n",
                    ToMs(world.sched().now()));
        // Partition first so the in-flight COMMIT datagram dies on the wire,
        // then crash: the subordinate is left squarely in doubt.
        world.net().SetPartition({{SiteId{0}}, {SiteId{1}}});
        world.Crash(0);
        return;
      }
    }
    world.sched().Post(Usec(200), *watcher);
  };
  world.sched().Post(Usec(200), *watcher);

  world.sched().Spawn([](World& w) -> Async<void> {
    AppClient app(w.site(0));
    auto tid = co_await app.Begin();
    co_await app.WriteInt(*tid, "hq", "ledger", 900);
    co_await app.WriteInt(*tid, "branch", "ledger", 1100);
    co_await app.Commit(*tid);
  }(world));
  world.RunUntilIdle();  // Subordinate retries status queries, then parks.

  const FamilyId family{SiteId{0}, 1};
  TranMan& branch_tm = world.site(1).tranman();
  std::printf("\n--- Operator inspects the branch site ---\n");
  std::printf("transaction state: %s, blocked: %s\n",
              branch_tm.QueryState(family) == TmTxnState::kPrepared ? "PREPARED (in doubt)"
                                                                    : "other",
              branch_tm.IsBlocked(family) ? "yes" : "no");
  std::printf("locks held hostage: %zu, status queries sent: %llu\n",
              world.site(1).server("branch")->locks().held_lock_count(),
              static_cast<unsigned long long>(branch_tm.counters().status_queries));

  // The operator guesses WRONG on purpose, to show damage detection.
  std::printf("\n[operator] forcing ABORT (a guess — the coordinator had committed!)\n");
  Status forced = branch_tm.HeuristicResolve(family, TmDecision::kAbort);
  std::printf("HeuristicResolve: %s\n", forced.ToString().c_str());
  world.RunUntilIdle();
  AppClient prober(world.site(1));
  auto after_guess = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto tid = co_await app.Begin();
    auto v = co_await app.ReadInt(*tid, "branch", "ledger");
    co_await app.Commit(*tid);
    co_return v.value_or(-1);
  }(prober));
  std::printf("branch ledger after heuristic abort: %lld (locks released, work undone)\n",
              static_cast<long long>(after_guess.value_or(-1)));

  std::printf("\n[%7.1f ms] the coordinator returns; recovery resumes its phase 2\n",
              ToMs(world.sched().now()));
  world.net().ClearPartition();
  world.Restart(0);
  world.RunUntilIdle();
  std::printf("heuristic damage detected at branch: %llu (guessed ABORT, truth was COMMIT)\n",
              static_cast<unsigned long long>(branch_tm.counters().heuristic_damage));

  auto hq_value = world.RunSync([](AppClient& app) -> Async<int64_t> {
    auto tid = co_await app.Begin();
    auto v = co_await app.ReadInt(*tid, "hq", "ledger");
    co_await app.Commit(*tid);
    co_return v.value_or(-1);
  }(prober));
  std::printf("hq ledger: %lld vs branch ledger: %lld -> the books no longer balance.\n",
              static_cast<long long>(hq_value.value_or(-1)),
              static_cast<long long>(after_guess.value_or(-1)));
  std::printf("\n\"While not guaranteeing correctness, this approach does not slow down\n"
              "commitment in the regular case\" (paper, Section 5). The damage counter is\n"
              "how an installation finds out it must reconcile by hand — or use the\n"
              "non-blocking protocol instead (see examples/nonblocking_inventory).\n");
  const bool demo_ok = branch_tm.counters().heuristic_damage == 1;
  return demo_ok ? 0 : 1;
}
