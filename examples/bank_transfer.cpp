// Bank transfers with crash-recovery: atomicity under fire.
//
// Three bank branches, one per site, each holding accounts. A stream of
// transfers runs between branches under two-phase commit; mid-stream the
// coordinating site crashes at a nasty moment (after subordinates prepared).
// The subordinate shows the classic 2PC BLOCKED state (holding locks, asking
// the dead coordinator for status), then the coordinator restarts, recovery
// replays its log, and presumed abort / commit-record replay resolve every
// in-doubt transaction. Total money is conserved throughout.
//
// Run:  ./build/examples/bank_transfer
#include <cstdio>
#include <string>

#include "src/harness/world.h"

using namespace camelot;

namespace {

std::string Branch(int i) { return "branch:" + std::to_string(i); }

Async<Status> Transfer(AppClient& app, int from, int to, int64_t amount) {
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return begin.status();
  }
  const Tid tid = *begin;
  auto src = co_await app.ReadInt(tid, Branch(from), "vault");
  auto dst = co_await app.ReadInt(tid, Branch(to), "vault");
  if (!src.ok() || !dst.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("read failed");
  }
  if (*src < amount) {
    co_await app.Abort(tid);
    co_return AbortedError("insufficient funds");
  }
  Status w1 = co_await app.WriteInt(tid, Branch(from), "vault", *src - amount);
  Status w2 = co_await app.WriteInt(tid, Branch(to), "vault", *dst + amount);
  if (!w1.ok() || !w2.ok()) {
    co_await app.Abort(tid);
    co_return AbortedError("write failed");
  }
  Status st = co_await app.Commit(tid);
  co_return st;
}

int64_t TotalMoney(World& world) {
  // Audit from a healthy site, transactionally.
  int up_site = 0;
  for (int i = 0; i < world.site_count(); ++i) {
    if (world.site(i).site().up()) {
      up_site = i;
      break;
    }
  }
  AppClient auditor(world.site(up_site));
  auto total = world.RunSync([](AppClient& app, int branches) -> Async<int64_t> {
    auto begin = co_await app.Begin();
    int64_t sum = 0;
    for (int i = 0; i < branches; ++i) {
      auto v = co_await app.ReadInt(*begin, Branch(i), "vault");
      if (!v.ok()) {
        co_await app.Abort(*begin);
        co_return -1;
      }
      sum += *v;
    }
    co_await app.Commit(*begin);
    co_return sum;
  }(auditor, world.site_count()));
  return total.value_or(-1);
}

}  // namespace

int main() {
  std::printf("=== Bank transfers across three branches, with a coordinator crash ===\n\n");
  WorldConfig cfg;
  cfg.site_count = 3;
  cfg.tranman.outcome_timeout = Usec(600000);  // Snappier blocking demo.
  World world(cfg);
  for (int i = 0; i < 3; ++i) {
    world.AddServer(i, Branch(i))->CreateObjectForSetup("vault", EncodeInt64(1000));
  }
  std::printf("Initial: each branch vault holds 1000 (total 3000).\n\n");

  // A stream of transfers from the site-0 application.
  int committed = 0;
  int aborted = 0;
  world.sched().Spawn([](World& w, int* ok, int* bad) -> Async<void> {
    AppClient app(w.site(0));
    for (int i = 0; i < 6; ++i) {
      Status st = co_await Transfer(app, i % 3, (i + 1) % 3, 50);
      if (st.ok()) {
        ++*ok;
        std::printf("[%7.1f ms] transfer #%d committed\n", ToMs(w.sched().now()), i);
      } else {
        ++*bad;
        std::printf("[%7.1f ms] transfer #%d ABORTED: %s\n", ToMs(w.sched().now()), i,
                    st.ToString().c_str());
      }
      if (!w.site(0).site().up()) {
        co_return;
      }
    }
  }(world, &committed, &aborted));

  // Crash the coordinator the moment some subordinate is prepared (in the
  // window of vulnerability).
  auto watcher = std::make_shared<std::function<void()>>();
  *watcher = [&world, watcher] {
    for (int s = 1; s < 3; ++s) {
      for (const auto& rec : world.site(s).log().ReadDurable()) {
        if (rec.kind == LogRecordKind::kPrepare &&
            world.site(s).tranman().QueryState(rec.tid.family) == TmTxnState::kPrepared) {
          std::printf("[%7.1f ms] *** site 0 (coordinator) CRASHES: subordinate %d is "
                      "prepared and in doubt ***\n",
                      ToMs(world.sched().now()), s);
          world.Crash(0);
          return;
        }
      }
    }
    world.sched().Post(Usec(500), *watcher);
  };
  world.sched().Post(Usec(500), *watcher);

  world.RunFor(Sec(3));
  std::printf("\n--- 3 s after the crash ---\n");
  for (int s = 1; s < 3; ++s) {
    size_t blocked = 0;
    for (const auto& rec : world.site(s).log().ReadDurable()) {
      if (rec.kind == LogRecordKind::kPrepare &&
          world.site(s).tranman().IsBlocked(rec.tid.family)) {
        ++blocked;
      }
    }
    std::printf("branch %d: %zu BLOCKED prepared transaction(s), %zu lock(s) held\n", s,
                blocked, world.site(s).server(Branch(s))->locks().held_lock_count());
  }
  world.RunUntilIdle();

  std::printf("\n[%7.1f ms] site 0 restarts; recovery replays its log...\n",
              ToMs(world.sched().now()));
  world.Restart(0);
  world.RunUntilIdle();

  std::printf("\n--- After recovery ---\n");
  int64_t balances[3];
  AppClient reader(world.site(0));
  for (int i = 0; i < 3; ++i) {
    auto v = world.RunSync([](AppClient& app, std::string branch) -> Async<int64_t> {
      auto begin = co_await app.Begin();
      auto value = co_await app.ReadInt(*begin, branch, "vault");
      co_await app.Commit(*begin);
      co_return value.value_or(-1);
    }(reader, Branch(i)));
    balances[i] = v.value_or(-1);
    std::printf("branch %d vault: %lld\n", i, static_cast<long long>(balances[i]));
  }
  const int64_t total = TotalMoney(world);
  std::printf("\nTotal money: %lld (must be 3000 — every transfer was atomic)\n",
              static_cast<long long>(total));
  std::printf("Transfers committed before/after the crash: %d, aborted: %d\n", committed,
              aborted);
  std::printf("%s\n", total == 3000 ? "ATOMICITY HELD." : "*** MONEY LEAKED — BUG ***");
  std::printf("\n--- Operational snapshot ---\n%s", world.StatsReport().c_str());
  return total == 3000 ? 0 : 1;
}
