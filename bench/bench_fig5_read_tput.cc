// Figure 5: "Read Transaction Throughput (Appl./server pairs vs TPS)".
//
// Same closed-loop experiment as Figure 4 but with read-only transactions, so
// the logger is idle and the TranMan + message system carry all the load. The
// paper's findings: a single TranMan thread "can accommodate more than 1
// client but not more than 2" (the curve flattens); 5 and 20 threads yield
// somewhat better results (so the 1-thread experiment is TranMan-bound, not
// OS-bound); and reads grow faster with offered load than updates do.
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/ascii_chart.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;
  std::printf("=== Figure 5: Read Transaction Throughput (pairs vs TPS) ===\n");
  std::printf("(VAX 8200 profile; 60 s of virtual time per point)\n\n");

  Table table({"SERIES", "1 pair", "2 pairs", "3 pairs", "4 pairs"});
  AsciiChart chart("app/server pairs", "read TPS");
  uint64_t queued_at_4[3] = {0, 0, 0};
  const char markers[] = {'2', '5', '1'};
  double one_pair[3] = {0, 0, 0};
  double two_pair[3] = {0, 0, 0};
  int series_index = 0;
  for (size_t threads : {20u, 5u, 1u}) {
    std::vector<std::string> row{std::to_string(threads) + " thread" +
                                 (threads == 1 ? "" : "s")};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int pairs = 1; pairs <= 4; ++pairs) {
      ThroughputConfig cfg;
      cfg.pairs = pairs;
      cfg.kind = TxnKind::kRead;
      cfg.tranman_threads = threads;
      cfg.duration = Sec(60);
      cfg.seed = 11 + static_cast<uint64_t>(pairs);
      ThroughputResult result = RunThroughputExperiment(cfg);
      row.push_back(Table::Num(result.tps, 1));
      xs.push_back(pairs);
      ys.push_back(result.tps);
      if (pairs == 4) {
        queued_at_4[series_index] = result.pool_queued_events;
      }
      if (pairs == 1) {
        one_pair[series_index] = result.tps;
      }
      if (pairs == 2) {
        two_pair[series_index] = result.tps;
      }
    }
    table.AddRow(row);
    chart.AddSeries(row[0], markers[series_index % 3], xs, ys);
    ++series_index;
  }
  table.Print();
  std::printf("\n");
  chart.Print();

  std::printf("\nGrowth from 1 to 2 pairs: %.0f%% (paper: 52%% for reads vs 32%% for\n",
              (two_pair[2] / one_pair[2] - 1.0) * 100.0);
  std::printf("updates at 1 thread — reads scale better because there is no log force).\n");
  std::printf("\nWhy the 1-thread curve flattens (\"TranMan-bound\"): events queued waiting\n");
  std::printf("for a worker at 4 pairs — 20 thr: %llu, 5 thr: %llu, 1 thr: %llu.\n",
              static_cast<unsigned long long>(queued_at_4[0]),
              static_cast<unsigned long long>(queued_at_4[1]),
              static_cast<unsigned long long>(queued_at_4[2]));
  std::printf("Paper reference (Figure 5): 1 thread flattens ~29 TPS by 2-3 pairs; 5 and 20\n");
  std::printf("threads reach ~36 TPS at 4 pairs and are nearly identical to each other.\n");
  return 0;
}
