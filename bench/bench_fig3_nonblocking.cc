// Figure 3: "Latency of Transactions, Non-blocking Commit (subordinates vs ms)".
//
// The same minimal-transaction experiment as Figure 2 but committing with the
// non-blocking protocol. The paper's findings: the write critical path is
// about twice two-phase commit's (4 vs 2 log forces, 5 vs 3 messages), the
// measured ratio is "somewhat less than twice", reads are optimized down to
// the two-phase shape, and the static analysis underestimates (150 predicted
// for the 1-subordinate write; ~70 predicted / ~101 measured for the read).
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/ascii_chart.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;
  std::printf("=== Figure 3: Latency of Transactions, Non-blocking Commit ===\n");
  std::printf("(100 repetitions per point; mean ms with stddev in parentheses)\n\n");

  Table table({"SERIES", "1 sub", "2 subs", "3 subs"});
  AsciiChart chart("subordinates", "latency (ms)");
  LatencyResult writes[4];
  LatencyResult reads[4];
  for (auto [kind, label] :
       {std::pair{TxnKind::kWrite, "Write"}, std::pair{TxnKind::kRead, "Read"}}) {
    std::vector<std::string> row{label};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int subs = 1; subs <= 3; ++subs) {
      LatencyConfig cfg;
      cfg.subordinates = subs;
      cfg.kind = kind;
      cfg.options = CommitOptions::NonBlocking();
      cfg.repetitions = 100;
      cfg.seed = 29 + static_cast<uint64_t>(subs);
      LatencyResult result = RunLatencyExperiment(cfg);
      row.push_back(result.total_ms.MeanStddevString());
      xs.push_back(subs);
      ys.push_back(result.total_ms.mean());
      (kind == TxnKind::kWrite ? writes : reads)[subs] = result;
    }
    table.AddRow(row);
    chart.AddSeries(label, kind == TxnKind::kWrite ? 'W' : 'R', xs, ys);
  }
  for (auto [results, label] : {std::pair{&writes[0], "TranMgmt, write"},
                                std::pair{&reads[0], "TranMgmt, read"}}) {
    std::vector<std::string> row{label};
    for (int subs = 1; subs <= 3; ++subs) {
      row.push_back(results[subs].tm_ms.MeanStddevString());
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
  chart.Print();

  // The headline ratio: non-blocking vs optimized two-phase at each N.
  std::printf("\nNon-blocking / two-phase write-latency ratio (paper: \"somewhat less than\n"
              "twice as high\", with static ratios 4/2 forces and 5/3 messages):\n");
  for (int subs = 1; subs <= 3; ++subs) {
    LatencyConfig cfg;
    cfg.subordinates = subs;
    cfg.kind = TxnKind::kWrite;
    cfg.options = CommitOptions::Optimized();
    cfg.repetitions = 100;
    cfg.seed = 57 + static_cast<uint64_t>(subs);
    LatencyResult two_phase = RunLatencyExperiment(cfg);
    std::printf("  %d sub(s): %.0f / %.0f = %.2f\n", subs, writes[subs].total_ms.mean(),
                two_phase.total_ms.mean(), writes[subs].total_ms.mean() /
                                               two_phase.total_ms.mean());
  }
  std::printf("\nPaper reference points: 1-sub write ~145-160 measured vs 150 static;\n"
              "1-sub read measured ~101 vs 70 static (\"quite far\"); variance remains high.\n");
  return 0;
}
