// Overhead of the Jepsen-style isolation harness: the same fault-free bank
// workload (src/harness/bank_workload.h) runs twice from one seed — once with
// the HistoryRecorder disabled (the production-shaped baseline) and once with
// every read/write/commit/abort recorded — and then the IsolationOracle
// replays the recorded history.
//
// Reported per run:
//   - host wall-clock for the simulation and events simulated per host second
//     (the recorder's hooks sit on the DataServer/TranMan hot paths, so this
//     is where recording overhead shows up);
//   - history events captured;
//   - mean virtual commit latency seen by the clients (must be identical in
//     both runs: recording must never perturb the simulation's timeline);
//   - host wall-clock of IsolationOracle::Check over the recorded history.
//
// The last line is a machine-readable JSON summary for trend tracking.
#include <chrono>
#include <cstdio>

#include "src/harness/bank_workload.h"
#include "src/harness/isolation_oracle.h"
#include "src/harness/world.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

BankWorkloadConfig BenchBankConfig() {
  BankWorkloadConfig bank;
  bank.accounts_per_site = 4;
  bank.clients = 6;
  bank.transfers_per_client = 50;
  bank.rng_seed = 7;
  return bank;
}

struct BenchResult {
  double sim_wall_ms = 0;
  uint64_t sim_events = 0;
  size_t history_events = 0;
  int committed = 0;
  int aborted = 0;
  double mean_commit_latency_ms = 0;
  SimTime virtual_end = 0;
  // Recorder-on run only.
  double oracle_wall_ms = 0;
  bool oracle_ok = false;
  size_t reads_checked = 0;
};

double HostMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

BenchResult RunBank(bool record) {
  BenchResult out;
  WorldConfig w;
  w.site_count = 3;
  w.seed = 42;
  World world(w);
  world.history().set_enabled(record);
  const BankWorkloadConfig bank = BenchBankConfig();
  SetupBank(world, bank);
  BankWorkloadStats stats;
  SpawnBankClients(world, bank, &stats);

  const auto start = std::chrono::steady_clock::now();
  out.sim_events = world.sched().RunUntilIdle(/*max_events=*/50u * 1000 * 1000);
  out.sim_wall_ms = HostMs(start);

  out.history_events = world.history().size();
  out.committed = stats.committed;
  out.aborted = stats.aborted;
  if (stats.committed > 0) {
    out.mean_commit_latency_ms = ToMs(stats.commit_latency_total) / stats.committed;
  }
  out.virtual_end = world.sched().now();

  if (record) {
    const auto check_start = std::chrono::steady_clock::now();
    const IsolationReport report = IsolationOracle::Check(world.history().events());
    out.oracle_wall_ms = HostMs(check_start);
    out.oracle_ok = report.ok();
    out.reads_checked = report.reads_checked;
    if (!report.ok()) {
      std::printf("ORACLE FAILURE (bench world is supposed to be fault-free):\n%s",
                  report.Explain().c_str());
    }
  }
  return out;
}

double EventsPerSec(const BenchResult& r) {
  return r.sim_wall_ms > 0 ? r.sim_events / (r.sim_wall_ms / 1000.0) : 0;
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;

  const BankWorkloadConfig bank = BenchBankConfig();
  std::printf("=== History-recording overhead on the bank workload ===\n");
  std::printf("(%d clients x %d transfers over %d accounts/site, fault-free,\n"
              " identical seed; 'off' disables the HistoryRecorder, 'on' records\n"
              " every operation and then runs IsolationOracle::Check)\n\n",
              bank.clients, bank.transfers_per_client, bank.accounts_per_site);

  const BenchResult off = RunBank(/*record=*/false);
  const BenchResult on = RunBank(/*record=*/true);

  Table table({"RECORDER", "sim wall ms", "events/s", "history events", "committed",
               "mean commit ms (virtual)", "oracle ms"});
  for (const auto* r : {&off, &on}) {
    const bool is_on = (r == &on);
    table.AddRow({is_on ? "on" : "off", Table::Num(r->sim_wall_ms, 1),
                  Table::Num(EventsPerSec(*r), 0), std::to_string(r->history_events),
                  std::to_string(r->committed), Table::Num(r->mean_commit_latency_ms, 3),
                  is_on ? Table::Num(r->oracle_wall_ms, 1) : "-"});
  }
  table.Print();

  // Recording must be timeline-invisible: the virtual clock and the commit
  // outcomes are part of the determinism contract, not just a nicety.
  const bool timeline_identical = off.virtual_end == on.virtual_end &&
                                  off.committed == on.committed &&
                                  off.aborted == on.aborted &&
                                  off.sim_events == on.sim_events;
  std::printf("\ntimeline identical across runs: %s%s\n",
              timeline_identical ? "yes" : "NO — recorder perturbed the simulation",
              on.oracle_ok ? "" : " (and the oracle flagged a fault-free run!)");

  auto emit = [](const char* name, const BenchResult& r, bool with_oracle) {
    std::printf("{\"recorder\":\"%s\",\"sim_wall_ms\":%.2f,\"events_per_sec\":%.0f,"
                "\"history_events\":%zu,\"committed\":%d,\"aborted\":%d,"
                "\"mean_commit_latency_ms\":%.3f",
                name, r.sim_wall_ms, EventsPerSec(r), r.history_events, r.committed,
                r.aborted, r.mean_commit_latency_ms);
    if (with_oracle) {
      std::printf(",\"oracle_wall_ms\":%.2f,\"oracle_ok\":%s,\"reads_checked\":%zu",
                  r.oracle_wall_ms, r.oracle_ok ? "true" : "false", r.reads_checked);
    }
    std::printf("}");
  };
  std::printf("JSON: [");
  emit("off", off, /*with_oracle=*/false);
  std::printf(",");
  emit("on", on, /*with_oracle=*/true);
  std::printf("]\n");
  return (timeline_identical && on.oracle_ok) ? 0 : 1;
}
