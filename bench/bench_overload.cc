// Overload robustness benchmark with a committed goodput trajectory.
//
// Runs the OverloadExplorer's baseline -> 5x spike -> recovery profile for
// each commit variant with admission control ON, plus one shedding-disabled
// collapse arm and one nemesis latency storm, and reports the virtual-time
// goodput numbers:
//
//   <variant>_measured_capacity_tps   usable knee from the calibration run
//   <variant>_baseline_goodput_tps    in-deadline commits/sec before the spike
//   <variant>_spike_goodput_tps       goodput DURING the 5x overload
//   <variant>_recovered_goodput_tps   background goodput after the spike ends
//   <variant>_p99_ms                  committed-txn latency p99 over the run
//   <variant>_shed_total              admission rejects + expiry sheds
//   <variant>_ok                      1 if every overload oracle held
//   collapse_*                        the same profile with shedding disabled
//   collapse_confirmed                1 if ExpectCollapse() found real collapse
//   storm_*                           congestion storm instead of a load spike
//
// Everything here is measured in VIRTUAL time, so the numbers are
// deterministic for a given seed and move only when the modeled system
// changes — no host-speed calibration is needed. Flags: --quick (fewer
// variants, used by the CI perf smoke job) and --json=PATH.
// scripts/compare_bench_overload.py gates CI on goodput regressions vs the
// committed BENCH_overload.json baseline.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/harness/overload_oracle.h"
#include "src/harness/replay.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

// JSON keys must not contain '-': "2pc-unopt" -> "2pc_unopt".
std::string KeyName(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

std::string JsonLine(const std::vector<Metric>& metrics, bool quick) {
  std::string out = "{\"bench\":\"overload\",\"quick\":";
  out += quick ? "true" : "false";
  for (const Metric& m : metrics) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.2f", m.name.c_str(), m.value);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace
}  // namespace camelot

int main(int argc, char** argv) {
  using namespace camelot;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<Metric> metrics;
  auto add = [&metrics](const std::string& name, double value, const char* unit) {
    metrics.push_back({name, value, unit});
    return value;
  };

  std::printf("=== Overload benchmarks (%s) ===\n\n", quick ? "quick" : "full");

  const std::vector<const char*> variants =
      quick ? std::vector<const char*>{"2pc", "nbc"}
            : std::vector<const char*>{"2pc", "2pc-unopt", "2pc-int", "nbc"};

  bool all_ok = true;
  for (const char* name : variants) {
    OverloadExplorerConfig cfg;
    cfg.variant = *ParseProtocolName(name);
    const OverloadRunResult r = OverloadExplorer(cfg).Run();
    const std::string k = KeyName(name);
    add(k + "_measured_capacity_tps", r.measured_capacity_tps, "txn/s");
    add(k + "_baseline_goodput_tps", r.baseline_goodput_tps, "txn/s");
    add(k + "_spike_goodput_tps", r.spike_goodput_tps, "txn/s");
    add(k + "_recovered_goodput_tps", r.recovered_goodput_tps, "txn/s");
    add(k + "_p99_ms", r.p99_ms, "ms");
    add(k + "_shed_total",
        static_cast<double>(r.overload_rejects + r.deadline_shed + r.prepares_shed +
                            r.background.shed + r.spike.shed),
        "events");
    add(k + "_ok", r.ok ? 1 : 0, "bool");
    if (!r.ok) {
      all_ok = false;
      std::fprintf(stderr, "variant %s failed its overload oracles:\n%s\n", name,
                   r.Explain().c_str());
    }
  }

  // The A/B arm: identical load, shedding machinery off. The bench asserts it
  // demonstrably collapses, same as the oracle test.
  {
    OverloadExplorerConfig cfg;
    cfg.shedding = false;
    const OverloadRunResult r = OverloadExplorer(cfg).Run();
    add("collapse_spike_goodput_tps", r.spike_goodput_tps, "txn/s");
    add("collapse_recovered_goodput_tps", r.recovered_goodput_tps, "txn/s");
    add("collapse_p99_ms", r.p99_ms, "ms");
    const auto held = OverloadExplorer::ExpectCollapse(r);
    add("collapse_confirmed", held.empty() ? 1 : 0, "bool");
    if (!held.empty()) {
      all_ok = false;
      for (const std::string& v : held) {
        std::fprintf(stderr, "collapse arm: %s\n", v.c_str());
      }
    }
  }

  if (!quick) {
    OverloadExplorerConfig cfg;
    const OverloadRunResult r = OverloadExplorer(cfg).RunLatencyStorm();
    add("storm_recovered_goodput_tps", r.recovered_goodput_tps, "txn/s");
    add("storm_p99_ms", r.p99_ms, "ms");
    add("storm_ok", r.ok ? 1 : 0, "bool");
    if (!r.ok) {
      all_ok = false;
      std::fprintf(stderr, "latency storm failed its oracles:\n%s\n",
                   r.Explain().c_str());
    }
  }

  Table table({"METRIC", "VALUE", "UNIT"});
  for (const Metric& m : metrics) {
    table.AddRow({m.name, Table::Num(m.value, 2), m.unit});
  }
  table.Print();

  const std::string json = JsonLine(metrics, quick);
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("\nJSON: %s\n", json.c_str());
  return all_ok ? 0 : 1;
}
