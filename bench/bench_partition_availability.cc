// Availability under partition: 2PC vs the non-blocking protocol when a
// partition isolates the coordinator at the exact window of vulnerability
// (commit record forced, COMMITs still in flight).
//
// One distributed transfer (coordinator at site 0, vaults at sites 1 and 2)
// runs under each protocol. A nemesis trigger on the coordinator's
// commit-force point installs the partition {0} | {1,2}, which heals 4 s
// later. We measure, at each prepared subordinate:
//   - decision latency: partition install -> the subordinate's outcome;
//   - whether the decision landed inside the fault window (availability);
//   - blocked periods / blocked time (lock-holding limbo, 2PC only);
//   - vault lock hold time (how long the blocked family kept others out).
//
// The paper's blocking claim, as numbers: 2PC subordinates cannot decide
// until the heal (decision latency ~ partition duration, locks held
// throughout), while NBC's connected majority quorum decides in a few
// hundred milliseconds and releases its locks with the partition still up.
//
// The last line is a machine-readable JSON summary for trend tracking.
#include <cstdio>
#include <string>

#include "src/harness/nemesis.h"
#include "src/harness/world.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

constexpr SimDuration kPartitionHold = Sec(4.0);

// The partition explorer's tight deterministic tuning: zero jitter, fast
// protocol timers, so the run is bit-deterministic and resolves in seconds
// of virtual time.
WorldConfig MakeConfig(uint64_t seed) {
  WorldConfig w;
  w.site_count = 3;
  w.seed = seed;
  w.net.send_jitter_mean = 0;
  w.net.stall_probability = 0;
  w.net.receive_skew_mean = 0;
  w.tranman.outcome_timeout = Usec(400000);
  w.tranman.retry_interval = Usec(300000);
  w.tranman.takeover_backoff = Usec(300000);
  w.tranman.orphan_check_interval = Sec(1.0);
  w.ipc.rpc_timeout = Sec(1.5);
  w.server.lock_wait_timeout = Sec(1.0);
  return w;
}

struct ProtocolResult {
  bool commit_ok = false;
  SimTime partition_at = 0;
  SimTime heal_at = 0;
  SimTime decided_at[2] = {0, 0};  // Sites 1 and 2.
  uint64_t blocked_periods = 0;
  uint64_t blocked_time_us = 0;
  uint64_t lock_hold_us = 0;  // Vault servers at sites 1+2.
};

Async<void> Transfer(World* world, bool non_blocking, bool* ok) {
  AppClient app(world->site(0));
  const CommitOptions options =
      non_blocking ? CommitOptions::NonBlocking() : CommitOptions::Optimized();
  auto begin = co_await app.Begin();
  if (!begin.ok()) {
    co_return;
  }
  const Tid tid = *begin;
  auto a = co_await app.ReadInt(tid, "server:1", "vault");
  auto b = co_await app.ReadInt(tid, "server:2", "vault");
  if (!a.ok() || !b.ok()) {
    co_await app.Abort(tid);
    co_return;
  }
  co_await app.WriteInt(tid, "server:1", "vault", *a - 10);
  co_await app.WriteInt(tid, "server:2", "vault", *b + 10);
  *ok = (co_await app.Commit(tid, options)).ok();
}

// Samples the subordinates' decision counters until both have decided (or the
// deadline passes), pinning each site's first decision instant.
Async<void> WatchDecisions(World* world, ProtocolResult* out) {
  const SimTime deadline = world->sched().now() + Sec(30.0);
  while (world->sched().now() < deadline) {
    bool all_decided = true;
    for (int sub : {1, 2}) {
      const TranManCounters& c = world->site(sub).tranman().counters();
      if (c.committed + c.aborted > 0) {
        if (out->decided_at[sub - 1] == 0) {
          out->decided_at[sub - 1] = world->sched().now();
        }
      } else {
        all_decided = false;
      }
    }
    if (all_decided) {
      co_return;
    }
    co_await world->sched().Delay(Msec(2));
  }
}

ProtocolResult RunProtocol(bool non_blocking) {
  ProtocolResult out;
  World world(MakeConfig(/*seed=*/1));
  for (int i = 0; i < 3; ++i) {
    world.AddServer(i, "server:" + std::to_string(i))
        ->CreateObjectForSetup("vault", EncodeInt64(1000));
  }

  Nemesis nemesis(world.sched(), world.net(), &world.failpoints());
  const std::string point =
      std::string("tm.") + (non_blocking ? "nbc" : "2pc") + ".commit_force.after";
  auto script = NemesisScript::Parse(point + "@0#1=partition:0|1,2;+" +
                                     std::to_string(kPartitionHold) + "=heal");
  CAMELOT_CHECK(script.ok());
  nemesis.set_on_apply([&world, &out](const NemesisEvent& ev) {
    if (ev.action == NemesisEvent::Action::kPartition) {
      out.partition_at = world.sched().now();
    } else if (ev.action == NemesisEvent::Action::kHeal) {
      out.heal_at = world.sched().now();
    }
  });
  CAMELOT_CHECK(nemesis.Install(*script).ok());

  world.sched().Spawn(Transfer(&world, non_blocking, &out.commit_ok));
  world.sched().Spawn(WatchDecisions(&world, &out));
  world.RunUntilIdle();
  world.failpoints().DisarmAll();

  for (int sub : {1, 2}) {
    const TranManCounters& c = world.site(sub).tranman().counters();
    out.blocked_periods += c.blocked_periods;
    out.blocked_time_us += c.blocked_time_us;
    out.lock_hold_us +=
        world.site(sub).server("server:" + std::to_string(sub))->locks().counters().total_hold_time_us;
  }
  return out;
}

double LatencyMs(const ProtocolResult& r, int sub) {
  if (r.decided_at[sub - 1] == 0 || r.partition_at == 0) {
    return -1.0;
  }
  return ToMs(r.decided_at[sub - 1] - r.partition_at);
}

bool DecidedInWindow(const ProtocolResult& r, int sub) {
  return r.decided_at[sub - 1] != 0 && r.heal_at != 0 && r.decided_at[sub - 1] < r.heal_at;
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;

  std::printf("=== Availability under a coordinator-isolating partition ===\n");
  std::printf("(partition {0} | {1,2} installed at the coordinator's commit force,\n"
              " healed %.0f ms later; decision latency measured at the prepared\n"
              " subordinates, sites 1 and 2)\n\n",
              ToMs(kPartitionHold));

  const ProtocolResult two_phase = RunProtocol(/*non_blocking=*/false);
  const ProtocolResult nbc = RunProtocol(/*non_blocking=*/true);

  Table table({"PROTOCOL", "decision ms (s1)", "decision ms (s2)", "in window",
               "blocked periods", "blocked ms", "vault lock hold ms"});
  for (const auto* r : {&two_phase, &nbc}) {
    const bool is_nbc = (r == &nbc);
    const int in_window = (DecidedInWindow(*r, 1) ? 1 : 0) + (DecidedInWindow(*r, 2) ? 1 : 0);
    table.AddRow({is_nbc ? "non-blocking" : "2PC",
                  Table::Num(LatencyMs(*r, 1), 1), Table::Num(LatencyMs(*r, 2), 1),
                  std::to_string(in_window) + "/2",
                  std::to_string(r->blocked_periods),
                  Table::Num(r->blocked_time_us / 1000.0, 1),
                  Table::Num(r->lock_hold_us / 1000.0, 1)});
  }
  table.Print();

  std::printf("\n2PC subordinates sit prepared until the heal delivers the verdict:\n"
              "decision latency tracks the partition duration and the vault locks\n"
              "stay held throughout. The non-blocking quorum {1,2} runs takeover and\n"
              "decides with the partition still standing.\n\n");

  auto emit = [](const char* name, const ProtocolResult& r) {
    std::printf("{\"protocol\":\"%s\",\"commit_ok\":%s,"
                "\"decision_latency_ms\":[%.1f,%.1f],"
                "\"decided_in_window\":%d,"
                "\"blocked_periods\":%llu,\"blocked_time_ms\":%.1f,"
                "\"vault_lock_hold_ms\":%.1f}",
                name, r.commit_ok ? "true" : "false", LatencyMs(r, 1), LatencyMs(r, 2),
                (DecidedInWindow(r, 1) ? 1 : 0) + (DecidedInWindow(r, 2) ? 1 : 0),
                static_cast<unsigned long long>(r.blocked_periods),
                r.blocked_time_us / 1000.0, r.lock_hold_us / 1000.0);
  };
  std::printf("JSON: [");
  emit("2pc", two_phase);
  std::printf(",");
  emit("nbc", nbc);
  std::printf("]\n");
  return 0;
}
