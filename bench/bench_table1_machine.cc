// Table 1: "Benchmarks of PC-RT and Mach".
//
// The paper calibrates the reader with microbenchmarks of the testbed (IBM RT
// PC model 125, Mach 2.0). We reproduce the table twice: (a) the paper's
// numbers, which are also the costs the simulator is configured with, and
// (b) google-benchmark measurements of the closest analogous primitives on
// THIS host, so the ~35-year hardware gap is visible.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/stats/table.h"

namespace {

// Defeat inlining so "procedure call" measures a real call.
__attribute__((noinline)) int OpaqueCall(int x) {
  benchmark::DoNotOptimize(x);
  return x + 1;
}

void BM_ProcedureCall32ByteArg(benchmark::State& state) {
  struct Arg {
    char bytes[32];
  } arg{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(arg);
    int r = OpaqueCall(arg.bytes[0]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProcedureCall32ByteArg);

void BM_DataCopy1KB(benchmark::State& state) {
  std::vector<char> src(1024, 'x');
  std::vector<char> dst(1024);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_DataCopy1KB);

void BM_KernelCallGetpid(benchmark::State& state) {
  for (auto _ : state) {
    // syscall(2) directly: glibc caches getpid() results.
    long pid = syscall(SYS_getpid);
    benchmark::DoNotOptimize(pid);
  }
}
BENCHMARK(BM_KernelCallGetpid);

// The closest in-process analogue of a local in-line IPC: a mutex+condvar
// handoff between two threads (message send + context switch + receive).
void BM_LocalIpcPingPong(benchmark::State& state) {
  std::mutex mu;
  std::condition_variable cv;
  int turn = 0;  // 0 = main, 1 = worker, 2 = stop.
  std::thread worker([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return turn != 0; });
      if (turn == 2) {
        return;
      }
      turn = 0;
      cv.notify_one();
    }
  });
  for (auto _ : state) {
    std::unique_lock<std::mutex> lock(mu);
    turn = 1;
    cv.notify_one();
    cv.wait(lock, [&] { return turn == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    turn = 2;
  }
  cv.notify_one();
  worker.join();
}
BENCHMARK(BM_LocalIpcPingPong);

void BM_ContextSwitchYield(benchmark::State& state) {
  for (auto _ : state) {
    std::this_thread::yield();
  }
}
BENCHMARK(BM_ContextSwitchYield);

void BM_BufferedFileWrite4KB(benchmark::State& state) {
  std::FILE* f = std::fopen("/tmp/camelot_bench_table1.tmp", "wb");
  std::vector<char> block(4096, 'z');
  for (auto _ : state) {
    std::fwrite(block.data(), 1, block.size(), f);
    std::fflush(f);
  }
  std::fclose(f);
  std::remove("/tmp/camelot_bench_table1.tmp");
}
BENCHMARK(BM_BufferedFileWrite4KB);

void PrintPaperTable() {
  camelot::Table table({"BENCHMARK (paper, IBM RT PC / Mach 2.0)", "PAPER TIME",
                        "HOST ANALOGUE (measured below)"});
  table.AddRow({"Procedure call, 32-byte arg", "12.0 us", "BM_ProcedureCall32ByteArg"});
  table.AddRow({"Data copy, bcopy()", "8.4 us + 180 us/KB", "BM_DataCopy1KB"});
  table.AddRow({"Kernel call, getpid()", "149 us", "BM_KernelCallGetpid"});
  table.AddRow({"Local IPC, 8-byte in-line", "1.5 ms", "BM_LocalIpcPingPong"});
  table.AddRow({"Remote IPC, 8-byte in-line", "19.1 ms", "(see bench_rpc_breakdown)"});
  table.AddRow({"Context switch, swtch()", "137 us", "BM_ContextSwitchYield"});
  table.AddRow({"Raw disk write, 1 track", "26.8 ms", "BM_BufferedFileWrite4KB (page cache!)"});
  std::printf("=== Table 1: Benchmarks of PC-RT and Mach ===\n\n");
  table.Print();
  std::printf(
      "\nThe paper's values above are ALSO the simulator's configured primitive\n"
      "costs (src/ipc/ipc.h, src/wal/stable_log.h, src/net/network.h), so every\n"
      "other bench reproduces the paper's latency environment regardless of the\n"
      "host measurements that follow.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintPaperTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
