// Section 4.1: "Inter-site Communication" — the Camelot RPC latency breakdown.
//
// The paper measures 1000 cross-site RPCs (28.5 ms each) and accounts for
// every millisecond: 19.1 ms base NetMsgServer-to-NetMsgServer RPC + 3 ms of
// ComMan<->NetMsgServer IPC + 2 x 3.2 ms of ComMan CPU. "Miraculously, there
// is no extra or missing time." We run the same accounting.
#include <cstdio>

#include "src/harness/world.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

Async<void> RunCalls(World& world, int reps, Summary* with_comman, Summary* without_comman,
                     Summary* netmsg_part, Summary* comman_ipc_part, Summary* comman_cpu_part) {
  world.site(1).site().RegisterService("null",
                                       [](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
                                         co_return RpcResult{OkStatus(), {}};
                                       });
  for (int i = 0; i < reps; ++i) {
    RpcTrace trace;
    co_await world.site(0).netmsg().Call(SiteId{1}, "null", 0, {}, RpcContext{},
                                         /*via_comman=*/true, &trace);
    with_comman->Add(ToMs(trace.total));
    netmsg_part->Add(ToMs(trace.netmsg));
    comman_ipc_part->Add(ToMs(trace.comman_ipc));
    comman_cpu_part->Add(ToMs(trace.comman_cpu));

    RpcTrace bare;
    co_await world.site(0).netmsg().Call(SiteId{1}, "null", 0, {}, RpcContext{},
                                         /*via_comman=*/false, &bare);
    without_comman->Add(ToMs(bare.total));
  }
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;
  std::printf("=== Section 4.1: Camelot RPC latency breakdown (1000 RPCs) ===\n\n");

  WorldConfig cfg;
  cfg.site_count = 2;
  World world(cfg);
  Summary with_cm;
  Summary without_cm;
  Summary netmsg;
  Summary cm_ipc;
  Summary cm_cpu;
  world.sched().Spawn(RunCalls(world, 1000, &with_cm, &without_cm, &netmsg, &cm_ipc, &cm_cpu));
  world.RunUntilIdle();

  Table table({"COMPONENT", "PAPER (ms)", "MEASURED mean (stddev) ms"});
  table.AddRow({"Full Camelot RPC (client-ComMan-NMS-net-NMS-ComMan-server)", "28.5",
                with_cm.MeanStddevString(1)});
  table.AddRow({"Base NetMsgServer-to-NetMsgServer RPC", "19.1", netmsg.MeanStddevString(1)});
  table.AddRow({"ComMan <-> NetMsgServer IPC (2 x 1.5)", "3.0", cm_ipc.MeanStddevString(1)});
  table.AddRow({"ComMan CPU (3.2 per site x 2)", "6.4", cm_cpu.MeanStddevString(1)});
  table.Print();

  const double accounted = netmsg.mean() + cm_ipc.mean() + cm_cpu.mean();
  std::printf("\nAccounting: %.1f + %.1f + %.1f = %.1f vs measured total %.1f "
              "(paper: 19.1 + 3 + 3.2 + 3.2 = 28.5)\n",
              netmsg.mean(), cm_ipc.mean(), cm_cpu.mean(), accounted, with_cm.mean());
  std::printf("RPC without the ComMan interposition: %s ms (the 9.4 ms tax of interposing an\n"
              "extra process into the RPC path, paper Section 4.1).\n",
              without_cm.MeanStddevString(1).c_str());
  return 0;
}
