// Media recovery costs: what the storage fault machinery adds to the paper's
// numbers.
//   1. Duplexing the common log (Camelot duplexed its log): both mirrors are
//      forced in parallel, so a duplexed force costs the same 15 ms as a
//      simplex one — the protection is (nearly) free in latency, and only
//      doubles the transfer count.
//   2. The foreground repair path: a cold read that trips a CRC failure pays
//      one extra log transfer (the redo-from-log scan) on top of the normal
//      data-disk read.
//   3. Restart with damaged media: the post-redo sweep rebuilds each corrupt
//      page from the log, so restart time grows linearly in the damage.
#include <cstdio>

#include "src/harness/world.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

WorldConfig QuietConfig() {
  WorldConfig cfg;
  cfg.site_count = 1;
  cfg.net.send_jitter_mean = 0;
  cfg.net.stall_probability = 0;
  cfg.net.receive_skew_mean = 0;
  return cfg;
}

// Commits one transaction writing `objects` one-byte values, so every page
// has log coverage for media recovery to redo from.
void FundObjects(World& world, int objects) {
  world.RunSync([](World* w, int n) -> Async<bool> {
    AppClient app(w->site(0));
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return false;
    }
    for (int i = 0; i < n; ++i) {
      co_await app.WriteInt(*begin, "srv", "obj" + std::to_string(i), i);
    }
    co_return (co_await app.Commit(*begin)).ok();
  }(&world, objects));
  world.RunSync([](World* w) -> Async<bool> {
    co_await w->site(0).diskmgr().FlushAll();
    co_return true;
  }(&world));
}

double MeasureReadMs(World& world, const std::string& object) {
  const SimTime before = world.sched().now();
  world.RunSync([](World* w, std::string obj) -> Async<bool> {
    AppClient app(w->site(0));
    auto begin = co_await app.Begin();
    if (!begin.ok()) {
      co_return false;
    }
    auto v = co_await app.ReadInt(*begin, "srv", obj);
    co_await app.Commit(*begin);
    co_return v.ok();
  }(&world, object));
  return ToMs(world.sched().now() - before);
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;

  std::printf("=== 1. Log force latency: simplex vs duplexed (100 forces each) ===\n\n");
  {
    Table table({"LOG", "ms/force", "disk writes", "mirror writes"});
    for (bool duplex : {false, true}) {
      Scheduler sched(1);
      LogConfig cfg;
      cfg.duplex = duplex;
      StableLog log(sched, cfg);
      const Tid tid{FamilyId{SiteId{0}, 1}, 0, 0};
      const LogRecord rec = LogRecord::Update(tid, "s", "o", {}, {1});
      for (int i = 0; i < 100; ++i) {
        sched.Spawn([](StableLog* l, LogRecord r) -> Async<void> {
          co_await l->AppendAndForce(r);
        }(&log, rec));
        sched.RunUntilIdle();
      }
      table.AddRow({duplex ? "duplexed" : "simplex",
                    Table::Num(ToMs(sched.now()) / 100.0, 2),
                    std::to_string(log.counters().disk_writes),
                    std::to_string(log.counters().mirror_writes)});
    }
    table.Print();
    std::printf("\nThe mirrors are forced in parallel: duplexing buys whole-frame\n"
                "salvage on interior corruption for zero added commit latency.\n\n");
  }

  std::printf("=== 2. Cold read: clean page vs CRC failure repaired from the log ===\n\n");
  {
    World world(QuietConfig());
    world.AddServer(0, "srv");
    FundObjects(world, 8);
    world.Crash(0);
    world.Restart(0);
    world.RunUntilIdle();
    const double warm_ms = [&] {
      MeasureReadMs(world, "obj0");          // Fault it in...
      return MeasureReadMs(world, "obj0");   // ...then read the buffered page.
    }();
    const double cold_ms = MeasureReadMs(world, "obj1");
    world.site(0).diskmgr().CorruptStoredPage("srv", "obj2");
    const double repair_ms = MeasureReadMs(world, "obj2");
    Table table({"READ", "ms"});
    table.AddRow({"buffer hit", Table::Num(warm_ms, 2)});
    table.AddRow({"cold (clean page)", Table::Num(cold_ms, 2)});
    table.AddRow({"cold (corrupt page, rebuilt from log)", Table::Num(repair_ms, 2)});
    table.Print();
    std::printf("\npages repaired: %llu (CRC failures detected: %llu)\n"
                "The repair premium is one log transfer for the redo scan —\n"
                "corruption is detected and healed inline, never served.\n\n",
                static_cast<unsigned long long>(world.site(0).diskmgr().counters().pages_repaired),
                static_cast<unsigned long long>(
                    world.site(0).diskmgr().counters().crc_failures_detected));
  }

  std::printf("=== 3. Restart time vs media damage (pages corrupted while down) ===\n\n");
  {
    Table table({"CORRUPT PAGES", "restart ms", "pages rebuilt", "repair failures"});
    for (int damage : {0, 4, 16, 64}) {
      WorldConfig cfg = QuietConfig();
      cfg.log.checkpoint_generations_retained = 2;
      World world(cfg);
      world.AddServer(0, "srv");
      FundObjects(world, 64);
      // Checkpoint so the damaged pages' updates are BEHIND the replay start:
      // redo cannot heal them, only the media sweep's fallback into the
      // retained previous interval can.
      world.RunSync([](World* w) -> Async<Status> {
        co_return co_await w->site(0).recovery().WriteCheckpoint();
      }(&world));
      world.Crash(0);
      for (int i = 0; i < damage; ++i) {
        world.site(0).diskmgr().CorruptStoredPage("srv", "obj" + std::to_string(i));
      }
      const SimTime before = world.sched().now();
      world.Restart(0);
      world.RunUntilIdle();
      const RecoveryReport& report = world.site(0).last_recovery();
      table.AddRow({std::to_string(damage), Table::Num(ToMs(world.sched().now() - before), 1),
                    std::to_string(report.pages_repaired),
                    std::to_string(report.repair_failures)});
    }
    table.Print();
    std::printf("\nEach rebuilt page pays one log scan: restart degrades linearly with\n"
                "damage instead of failing, and pages the redo pass already rewrote\n"
                "(post-checkpoint updates) are healed for free.\n");
  }
  return 0;
}
