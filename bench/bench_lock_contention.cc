// Section 4.2's lock-contention analysis: two pipelined transactions that
// lock and update the same data element.
//
// The paper computes: the second transaction's remote operation reaches the
// data element ~21 ms after the first commit-transaction call returns, while
// the first transaction's locks take ~26 ms to drop (commit datagram + commit
// log force + remote drop-locks call under the unoptimized protocol), so the
// second operation waits ~5 ms "by this simple analysis" — and the optimized
// protocol (locks dropped before the commit-record force) removes most of the
// wait. We measure the second operation's service time directly.
#include <cstdio>

#include "src/harness/world.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

struct Outcome {
  Summary second_op_wait_ms;  // Extra service time of the contended write.
  Summary baseline_op_ms;     // Service time of an uncontended write.
};

Async<void> RunPipelined(World& world, CommitOptions options, int reps, Outcome* out) {
  AppClient app(world.site(0));
  Scheduler& sched = world.sched();

  for (int rep = 0; rep < reps; ++rep) {
    // Uncontended baseline.
    {
      auto t1 = co_await app.Begin();
      const SimTime op_start = sched.now();
      co_await app.WriteInt(*t1, "server:1", "elem", rep);
      out->baseline_op_ms.Add(ToMs(sched.now() - op_start));
      co_await app.Commit(*t1, options);
      co_await sched.Delay(Usec(250000));
    }
    // Pipelined pair: T2's operation is issued the instant T1's commit call
    // returns (the paper's scenario).
    auto t1 = co_await app.Begin();
    co_await app.WriteInt(*t1, "server:1", "elem", rep);
    Status c1 = co_await app.Commit(*t1, options);
    if (!c1.ok()) {
      continue;
    }
    auto t2 = co_await app.Begin();
    const SimTime op_start = sched.now();
    Status w2 = co_await app.WriteInt(*t2, "server:1", "elem", rep + 1000);
    if (w2.ok()) {
      out->second_op_wait_ms.Add(ToMs(sched.now() - op_start));
      co_await app.Commit(*t2, options);
    } else {
      co_await app.Abort(*t2);
    }
    co_await sched.Delay(Usec(250000));
  }
}

double MeasureWait(CommitOptions options, const char** label) {
  static Outcome outcome;
  outcome = Outcome{};
  WorldConfig cfg;
  cfg.site_count = 2;
  cfg.seed = 71;
  World world(cfg);
  for (int i = 0; i < 2; ++i) {
    DataServer* server = world.AddServer(i, "server:" + std::to_string(i));
    server->CreateObjectForSetup("elem", EncodeInt64(0));
  }
  world.sched().Spawn(RunPipelined(world, options, 150, &outcome));
  world.RunUntilIdle();
  (void)label;
  return outcome.second_op_wait_ms.mean() - outcome.baseline_op_ms.mean();
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;
  std::printf("=== Section 4.2: lock contention between pipelined transactions ===\n");
  std::printf("(second transaction updates the same data element at the subordinate;\n");
  std::printf(" extra wait = contended remote-write time minus uncontended time)\n\n");

  const char* unused = nullptr;
  const double unopt_wait = MeasureWait(CommitOptions::Unoptimized(), &unused);
  const double opt_wait = MeasureWait(CommitOptions::Optimized(), &unused);

  Table table({"PROTOCOL VARIANT", "second op extra wait (ms)", "paper's static estimate"});
  table.AddRow({"Unoptimized (locks drop after commit force)", Table::Num(unopt_wait, 1),
                "~5 ms (26 - 21)"});
  table.AddRow({"Optimized (locks drop before commit record)", Table::Num(opt_wait, 1),
                "~0 (wait removed)"});
  table.Print();

  std::printf("\nThe unoptimized subordinate holds its write locks through a 15 ms commit\n");
  std::printf("force; the paper's interleaving analysis predicts the successor operation\n");
  std::printf("waits ~5 ms (\"could be much longer\" under coordinator interleaving). The\n");
  std::printf("optimized protocol drops locks first, which is its second benefit: \"locks\n");
  std::printf("are retained at the subordinate for a slightly shorter time\".\n");
  return 0;
}
