// Section 4.2 / Conclusions: multicast from coordinator to subordinates.
//
// "A surprising result is that multicasting messages from coordinator to
// subordinates reduces variance substantially, suggesting that much of the
// variance is created by the coordinator's repeated sends" — and, from the
// conclusions, "multicast communication for coordinator to subordinates does
// not reduce commit latency, but does reduce variance."
//
// We run the 3-subordinate minimal-update experiment with sequential sends vs
// multicast fan-out and compare means and standard deviations.
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;
  std::printf("=== Multicast vs sequential datagram fan-out (3 subordinates) ===\n");
  std::printf("(200 repetitions per cell; optimized two-phase commit)\n\n");

  Table table({"FAN-OUT", "write mean (stddev) ms", "read mean (stddev) ms"});
  double uni_stddev = 0;
  double multi_stddev = 0;
  for (bool multicast : {false, true}) {
    std::vector<std::string> row{multicast ? "Multicast" : "Sequential sends"};
    for (TxnKind kind : {TxnKind::kWrite, TxnKind::kRead}) {
      LatencyConfig cfg;
      cfg.subordinates = 3;
      cfg.kind = kind;
      cfg.repetitions = 300;
      cfg.multicast = multicast;
      cfg.seed = 41;
      cfg.pipelined = false;  // Isolate each commit so the fan-out variance
                              // is what gets measured, not lock-wait coupling.
      LatencyResult result = RunLatencyExperiment(cfg);
      row.push_back(result.total_ms.MeanStddevString());
      if (kind == TxnKind::kWrite) {
        (multicast ? multi_stddev : uni_stddev) = result.total_ms.stddev();
      }
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nWrite-latency stddev: sequential %.1f ms -> multicast %.1f ms "
              "(%.0f%% reduction).\n",
              uni_stddev, multi_stddev, (1.0 - multi_stddev / uni_stddev) * 100.0);
  std::printf("Mechanism: sequential fan-out draws one OS-scheduling jitter PER send and\n"
              "the delays accumulate across the coordinator's back-to-back sends; a\n"
              "multicast is one physical transmission with one jitter draw shared by the\n"
              "whole group. The mean barely moves; the spread collapses — the paper's\n"
              "conclusion 4.\n");
  return 0;
}
