// Figure 4: "Update Transaction Throughput (Appl./server pairs vs TPS)".
//
// N application/server pairs on one (VAX 8200-profile) site run minimal update
// transactions in a closed loop; series vary the TranMan worker-thread count
// (1 / 5 / 20) and, for the top series, enable group commit. The paper's
// findings, all of which must reproduce:
//   - the logger is the bottleneck in update tests;
//   - 20 threads ~= 5 threads (more evidence logging is the bottleneck);
//   - 1 thread is clearly worse: a thread is OCCUPIED for the whole log force,
//     so a single thread can have only one force outstanding — which is also
//     why "the utility of a multithreaded transaction manager is determined by
//     whether group commit is turned on";
//   - group commit on top.
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/ascii_chart.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;
  std::printf("=== Figure 4: Update Transaction Throughput (pairs vs TPS) ===\n");
  std::printf("(VAX 8200 profile: 3x IPC costs, bursty kernel on one master processor,\n");
  std::printf(" shared-disk log force; 60 s of virtual time per point)\n\n");

  struct Series {
    const char* name;
    size_t threads;
    bool group_commit;
  };
  const Series series[] = {
      {"Group commit (20 thr)", 20, true},
      {"20 threads", 20, false},
      {"5 threads", 5, false},
      {"1 thread", 1, false},
  };

  Table table({"SERIES", "1 pair", "2 pairs", "3 pairs", "4 pairs"});
  AsciiChart chart("app/server pairs", "update TPS");
  const char markers[] = {'G', '2', '5', '1'};
  int series_index = 0;
  for (const auto& s : series) {
    std::vector<std::string> row{s.name};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int pairs = 1; pairs <= 4; ++pairs) {
      ThroughputConfig cfg;
      cfg.pairs = pairs;
      cfg.kind = TxnKind::kWrite;
      cfg.tranman_threads = s.threads;
      cfg.group_commit = s.group_commit;
      cfg.duration = Sec(60);
      cfg.seed = 5 + static_cast<uint64_t>(pairs);
      ThroughputResult result = RunThroughputExperiment(cfg);
      row.push_back(Table::Num(result.tps, 1));
      xs.push_back(pairs);
      ys.push_back(result.tps);
    }
    table.AddRow(row);
    chart.AddSeries(s.name, markers[series_index++ % 4], xs, ys);
  }
  table.Print();
  std::printf("\n");
  chart.Print();

  std::printf("\nPaper reference (Figure 4, 4 pairs): group commit ~9.5, 20 thr ~8.5,\n");
  std::printf("5 thr ~8, 1 thread ~6.5 TPS (absolute numbers testbed-specific; the\n");
  std::printf("ORDERING and the 1-thread saturation are the reproduced result).\n");
  std::printf("Growth 1->2 pairs should be visibly smaller than the read test's\n");
  std::printf("(paper: 32%% vs 52%%), because every update transaction drags a log force.\n");
  return 0;
}
