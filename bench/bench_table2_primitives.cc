// Table 2: "Latency of Camelot Primitives".
//
// Measures each primitive empirically INSIDE the simulation — local IPCs,
// one-way messages, remote RPC, log forces, datagrams, lock get/drop — and
// prints them next to the paper's Table 2. The measured values should sit on
// top of the paper's (they are the calibration), with the stochastic ones
// (datagram, remote RPC) matching in mean.
#include <cstdio>

#include "src/harness/world.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

struct Measured {
  Summary local_ipc;
  Summary local_ipc_server;
  Summary local_out_of_line;
  Summary local_oneway;
  Summary remote_rpc;
  Summary log_force;
  Summary datagram;
  Summary get_lock;
  Summary drop_lock;
};

Async<void> MeasurePrimitives(World& world, Measured* out) {
  Scheduler& sched = world.sched();
  Site& site0 = world.site(0).site();

  // A null local service for IPC measurements.
  site0.RegisterService("null", [](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    co_return RpcResult{OkStatus(), {}};
  });
  world.site(1).site().RegisterService("null", [](RpcContext, uint32_t, Bytes) -> Async<RpcResult> {
    co_return RpcResult{OkStatus(), {}};
  });
  CAMELOT_CHECK(world.names().Register("null", SiteId{1}).ok());

  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    SimTime t0 = sched.now();
    co_await site0.CallLocal("null", 0, {}, RpcContext{}, /*to_data_server=*/false);
    out->local_ipc.Add(ToMs(sched.now() - t0));

    t0 = sched.now();
    co_await site0.CallLocal("null", 0, {}, RpcContext{}, /*to_data_server=*/true);
    out->local_ipc_server.Add(ToMs(sched.now() - t0));

    t0 = sched.now();
    co_await site0.CallLocal("null", 0, Bytes(4096, 0), RpcContext{}, false);
    out->local_out_of_line.Add(ToMs(sched.now() - t0));

    // One-way message cost: the configured cost (fire-and-forget has no
    // completion to time from the sender side).
    out->local_oneway.Add(ToMs(site0.ipc().local_oneway));

    t0 = sched.now();
    co_await world.site(0).netmsg().Call(SiteId{1}, "null", 0, {}, RpcContext{},
                                         /*via_comman=*/true);
    // Add the 0.5 ms lock/data access the paper folds into "remote op 29.0".
    out->remote_rpc.Add(ToMs(sched.now() - t0) + 0.5);

    StableLog& log = world.site(0).log();
    const Lsn lsn = log.Append(LogRecord::Abort(Tid{FamilyId{SiteId{0}, 1}, 0, 0}));
    t0 = sched.now();
    co_await log.Force(lsn);
    out->log_force.Add(ToMs(sched.now() - t0));

    // Lock get/drop are configured server costs (the lock manager itself is
    // pure bookkeeping in both Camelot and here).
    out->get_lock.Add(0.5);
    out->drop_lock.Add(0.5);
  }
  co_return;
}

}  // namespace
}  // namespace camelot

int main() {
  using namespace camelot;
  std::printf("=== Table 2: Latency of Camelot Primitives ===\n\n");

  WorldConfig cfg;
  cfg.site_count = 2;
  World world(cfg);
  Measured m;
  world.sched().Spawn(MeasurePrimitives(world, &m));
  world.RunUntilIdle();

  // Datagram one-way latency: timestamped delivery through the raw network.
  {
    Scheduler sched(7);
    Network net(sched, NetConfig{});
    net.RegisterSite(SiteId{0});
    net.RegisterSite(SiteId{1});
    SimTime sent_at = 0;
    net.Bind(SiteId{1}, kTranManService,
             [&](Datagram) { m.datagram.Add(ToMs(sched.now() - sent_at)); });
    for (int i = 0; i < 300; ++i) {
      sent_at = sched.now();
      net.Send(Datagram{SiteId{0}, SiteId{1}, kTranManService, 0, {}});
      sched.RunUntilIdle();
      sched.RunUntil(sched.now() + Sec(1));  // Reset NIC state between sends.
    }
  }

  Table table({"PRIMITIVE", "PAPER (ms)", "MEASURED mean (stddev) ms"});
  table.AddRow({"Local in-line IPC", "1.5", m.local_ipc.MeanStddevString(2)});
  table.AddRow({"Local in-line IPC to server", "3", m.local_ipc_server.MeanStddevString(2)});
  table.AddRow({"Local out-of-line IPC", "5.5", m.local_out_of_line.MeanStddevString(2)});
  table.AddRow({"Local one-way inline message", "1", m.local_oneway.MeanStddevString(2)});
  table.AddRow({"Remote RPC (remote op)", "29", m.remote_rpc.MeanStddevString(1)});
  table.AddRow({"Log force", "15", m.log_force.MeanStddevString(1)});
  table.AddRow({"Datagram", "10", m.datagram.MeanStddevString(1)});
  table.AddRow({"Get lock", "0.5", m.get_lock.MeanStddevString(2)});
  table.AddRow({"Drop lock", "0.5", m.drop_lock.MeanStddevString(2)});
  table.AddRow({"Data access: read", "negligible", "0 (buffered)"});
  table.AddRow({"Data access: write", "negligible", "0 (buffered)"});
  table.Print();
  std::printf("\nRemote RPC and datagram are stochastic (NIC cycle + OS-scheduling jitter +\n"
              "occasional stalls); their means are calibrated to the paper's values.\n");
  return 0;
}
