// Ablations on the design choices DESIGN.md calls out:
//   1. Group commit x thread count (the Section 3.4/3.5 interplay: "the
//      utility of a multithreaded transaction manager is determined by whether
//      group commit is turned on").
//   2. The commit-ack piggyback delay vs the unoptimized protocol's
//      subordinate force count (the Section 3.2 dissection, question 4).
//   3. Sensitivity of the static-analysis error to network jitter (the paper:
//      "the method seems less accurate with smaller transactions").
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;

  std::printf("=== Ablation 1: group commit x TranMan threads (update TPS, 4 pairs) ===\n\n");
  {
    Table table({"THREADS", "group commit OFF", "group commit ON", "GC gain"});
    for (size_t threads : {1u, 5u, 20u}) {
      double tps[2] = {0, 0};
      int i = 0;
      for (bool gc : {false, true}) {
        ThroughputConfig cfg;
        cfg.pairs = 4;
        cfg.kind = TxnKind::kWrite;
        cfg.tranman_threads = threads;
        cfg.group_commit = gc;
        cfg.duration = Sec(60);
        tps[i++] = RunThroughputExperiment(cfg).tps;
      }
      char gain[32];
      std::snprintf(gain, sizeof(gain), "%+.0f%%", (tps[1] / tps[0] - 1.0) * 100.0);
      table.AddRow({std::to_string(threads), Table::Num(tps[0], 1), Table::Num(tps[1], 1),
                    gain});
    }
    table.Print();
    std::printf("\nTwo findings: (a) 5 and 20 threads are identical in BOTH columns — the\n"
                "logger, not transaction management, is the update-test bottleneck; and\n"
                "(b) the 1-thread ceiling comes from the worker being occupied for every\n"
                "force, so the highest throughput needs BOTH multithreading and group\n"
                "commit — the paper's \"multithreaded design improves throughput provided\n"
                "that log batching is used\".\n\n");
  }

  std::printf("=== Ablation 2: the Section 3.2 dissection (1-sub update latency) ===\n\n");
  {
    Table table({"VARIANT (force commit rec / piggyback ack)", "completion ms",
                 "critical path ms", "sub disk writes/txn"});
    struct V {
      const char* name;
      CommitOptions options;
    };
    for (const V& v : {V{"optimized (no / yes)", CommitOptions::Optimized()},
                       V{"intermediate (yes / yes)", CommitOptions::Intermediate()},
                       V{"unoptimized (yes / no)", CommitOptions::Unoptimized()}}) {
      LatencyConfig cfg;
      cfg.subordinates = 1;
      cfg.kind = TxnKind::kWrite;
      cfg.options = v.options;
      cfg.repetitions = 100;
      cfg.pipelined = false;  // Isolated transactions: measure the critical path.
      LatencyResult r = RunLatencyExperiment(cfg);
      table.AddRow({v.name, r.total_ms.MeanStddevString(), r.critical_ms.MeanStddevString(),
                    v.options.force_subordinate_commit ? "2" : "1 (+1 lazy)"});
    }
    table.Print();
    std::printf("\nCompletion latency is identical across variants (the coordinator never\n"
                "waits for the subordinate's commit record); the critical path and the\n"
                "subordinate's forced-write count carry the whole difference.\n"
                "\"Throughput is improved at no cost to latency.\"\n\n");
  }

  std::printf("=== Ablation 3: message piggybacking (Section 4.2's batching remark) ===\n\n");
  {
    Table table({"PIGGYBACK DELAY", "datagrams / committed txn", "acks piggybacked"});
    for (SimDuration delay : {SimDuration{0}, Usec(50000), Usec(300000)}) {
      WorldConfig wcfg;
      wcfg.site_count = 2;
      wcfg.tranman.piggyback_delay = delay;
      World world(wcfg);
      for (int i = 0; i < 2; ++i) {
        world.AddServer(i, "server:" + std::to_string(i))
            ->CreateObjectForSetup("obj", EncodeInt64(0));
      }
      AppClient app(world.site(0));
      auto committed = world.RunSync([](AppClient& a) -> Async<int> {
        int ok = 0;
        for (int i = 0; i < 30; ++i) {
          auto b = co_await a.Begin();
          co_await a.WriteInt(*b, "server:0", "obj", i);
          co_await a.WriteInt(*b, "server:1", "obj", i);
          Status st = co_await a.Commit(*b);
          if (st.ok()) {
            ++ok;
          }
        }
        co_return ok;
      }(app));
      const double per_txn = static_cast<double>(world.net().counters().datagrams_sent) /
                             std::max(1, committed.value_or(1));
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f ms", ToMs(delay));
      table.AddRow({delay == 0 ? "off" : label, Table::Num(per_txn, 1),
                    std::to_string(world.site(1).tranman().counters().messages_piggybacked)});
    }
    table.Print();
    std::printf("\n\"Message batching (piggybacking) could be used to decrease the number of\n"
                "inter-TranMan messages used per commitment. Camelot batches only those\n"
                "messages that are not in the critical path\" — here the subordinate's\n"
                "commit-ack rides the next transaction's protocol traffic.\n\n");
  }

  std::printf("=== Ablation 4: static-analysis error vs network jitter ===\n\n");
  {
    Table table({"JITTER", "local update err", "1-sub update err", "1-sub read err"});
    for (bool jitter : {false, true}) {
      std::vector<std::string> row{jitter ? "realistic" : "none"};
      struct C {
        TxnKind kind;
        int subs;
        CommitProtocol protocol;
      };
      for (const C& c : {C{TxnKind::kWrite, 0, CommitProtocol::kTwoPhase},
                         C{TxnKind::kWrite, 1, CommitProtocol::kTwoPhase},
                         C{TxnKind::kRead, 1, CommitProtocol::kTwoPhase}}) {
        LatencyConfig cfg;
        cfg.subordinates = c.subs;
        cfg.kind = c.kind;
        cfg.repetitions = 100;
        cfg.deterministic = !jitter;
        LatencyResult r = RunLatencyExperiment(cfg);
        const double predicted = CompletionPath(c.protocol, c.kind, c.subs).TotalMs();
        char err[32];
        std::snprintf(err, sizeof(err), "%+.1f%%",
                      (r.total_ms.mean() - predicted) / predicted * 100.0);
        row.push_back(err);
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\nThe static method's error is dominated by unmodelled CPU when the network\n"
                "is quiet and grows with jitter; relative error is largest for the smallest\n"
                "transactions, exactly the paper's observation about the method.\n");
  }
  return 0;
}
