// Paxos Commit: write latency vs the fault-tolerance degree F, against the
// optimized two-phase and non-blocking baselines.
//
// Gray & Lamport's cost claim, transposed onto the paper's cost model: Paxos
// Commit with F = 0 IS optimized two-phase commit (same forces, same
// datagrams — the degenerate collapse the conformance oracle asserts
// exactly), and each increment of F buys coordinator-failure tolerance with
// one more acceptor force on the commit path plus the accept fan-out
// (N_prepare + (2F+1) vote datagrams per participant, F extra PAXOS-ACCEPTED
// waits). The crossover against the non-blocking variant is the headline:
// NBC pays its replication quorum every transaction regardless of fault
// tolerance, so Paxos F = 1 lands near (not above) NBC while additionally
// surviving any single acceptor crash without blocking.
#include <cstdio>

#include "src/analysis/static_analysis.h"
#include "src/harness/experiments.h"
#include "src/stats/ascii_chart.h"
#include "src/stats/table.h"

namespace {

// Protocol-only force/datagram totals from the static count vectors.
struct StaticCounts {
  int64_t forces = 0;
  int64_t datagrams = 0;
};

StaticCounts PredictedCounts(const camelot::CommitOptions& options, int subordinates) {
  using namespace camelot;
  const CountVector counts = ExpectedProtocolCounts(options, /*update_subs=*/subordinates,
                                                    /*readonly_subs=*/0,
                                                    /*local_updates=*/true,
                                                    TxnOutcome::kCommit);
  StaticCounts out;
  for (const auto& [key, n] : counts) {
    if (key.ends_with("/force")) {
      out.forces += n;
    } else if (key.ends_with("/dgram")) {
      out.datagrams += n;
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace camelot;
  std::printf("=== Paxos Commit: latency vs F (writes, mean ms, stddev in parentheses) ===\n");
  std::printf("(100 repetitions per point; N participants = subordinates + 1;\n");
  std::printf(" the acceptor set clamps to the participant count, so F degrades\n");
  std::printf(" gracefully on narrow transactions)\n\n");

  Table table({"SERIES", "2 subs", "3 subs", "4 subs"});
  AsciiChart chart("subordinates", "latency (ms)");

  struct Series {
    const char* label;
    char mark;
    CommitOptions options;
  };
  const Series series[] = {
      {"2PC (optimized)", '2', CommitOptions::Optimized()},
      {"Paxos F=0", '0', CommitOptions::Paxos(0)},
      {"Paxos F=1", '1', CommitOptions::Paxos(1)},
      {"Paxos F=2", 'P', CommitOptions::Paxos(2)},
      {"Non-blocking", 'N', CommitOptions::NonBlocking()},
  };

  double paxos1[5] = {0};
  double nbc[5] = {0};
  double twopc[5] = {0};
  for (const Series& s : series) {
    std::vector<std::string> row{s.label};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int subs = 2; subs <= 4; ++subs) {
      LatencyConfig cfg;
      cfg.subordinates = subs;
      cfg.kind = TxnKind::kWrite;
      cfg.options = s.options;
      cfg.repetitions = 100;
      cfg.seed = 71 + static_cast<uint64_t>(subs);
      const LatencyResult result = RunLatencyExperiment(cfg);
      row.push_back(result.total_ms.MeanStddevString());
      xs.push_back(subs);
      ys.push_back(result.total_ms.mean());
      if (s.options.protocol == CommitProtocol::kPaxos && s.options.paxos_f == 1) {
        paxos1[subs] = result.total_ms.mean();
      } else if (s.options.protocol == CommitProtocol::kNonBlocking) {
        nbc[subs] = result.total_ms.mean();
      } else if (s.options.protocol == CommitProtocol::kTwoPhase &&
                 s.options.paxos_f == 0 && !s.options.force_subordinate_commit) {
        twopc[subs] = result.total_ms.mean();
      }
    }
    table.AddRow(row);
    chart.AddSeries(s.label, s.mark, xs, ys);
  }
  table.Print();
  std::printf("\n");
  chart.Print();

  std::printf("\nStatic protocol counts (forces / datagrams, 3-sub write commit):\n");
  for (const Series& s : series) {
    const StaticCounts c = PredictedCounts(s.options, 3);
    std::printf("  %-16s %2lld forces  %2lld datagrams\n", s.label,
                static_cast<long long>(c.forces), static_cast<long long>(c.datagrams));
  }

  std::printf("\nHeadline ratios (write latency, by subordinate count):\n");
  for (int subs = 2; subs <= 4; ++subs) {
    std::printf("  %d subs: paxos(F=1)/2pc = %.2f   paxos(F=1)/nbc = %.2f\n", subs,
                twopc[subs] > 0 ? paxos1[subs] / twopc[subs] : 0.0,
                nbc[subs] > 0 ? paxos1[subs] / nbc[subs] : 0.0);
  }
  std::printf("\nReference points: F=0 must match 2PC exactly (the conformance oracle\n"
              "asserts count-vector equality); F=1 is expected within ~1.3x of NBC while\n"
              "tolerating any single-site crash without blocking.\n");
  return 0;
}
