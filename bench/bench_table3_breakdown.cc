// Table 3: "Latency Breakdown" — static analysis vs empirical measurement.
//
// The upper portion lists, in approximate order, the events on the critical
// path and their latencies; the middle compares static and empirical analyses;
// the lower portion lists operations that must happen but are off the critical
// path. The paper's static analysis accounts for 24.5 of 31 ms (local update),
// 99.5 of 110 ms (1-subordinate update), and 9.5 of 13 ms (local read): an
// UNDERESTIMATE, worse in relative terms for smaller transactions, because CPU
// time inside processes is ignored.
#include <cstdio>
#include <string>

#include "src/harness/conformance.h"
#include "src/harness/experiments.h"
#include "src/stats/table.h"

namespace {

void PrintPath(const char* title, const camelot::PathAnalysis& path) {
  std::printf("%s\n", title);
  camelot::Table table({"EVENT (critical-path order)", "ms"});
  for (const auto& ev : path.events) {
    table.AddRow({ev.name, camelot::Table::Num(ev.ms, 1)});
  }
  table.AddRow({"TOTAL", camelot::Table::Num(path.TotalMs(), 1)});
  table.Print();
  std::printf("  formula: %s\n\n", path.Formula().c_str());
}

}  // namespace

int main() {
  using namespace camelot;
  std::printf("=== Table 3: Latency Breakdown (static analysis vs empirical) ===\n\n");

  PrintPath("--- Critical path, local update transaction ---",
            CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0));
  PrintPath("--- Critical path, 1-subordinate update (optimized 2PC) ---",
            CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1));
  PrintPath("--- Critical path, 1-subordinate update (non-blocking) ---",
            CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1));

  struct Case {
    const char* name;
    CommitProtocol protocol;
    TxnKind kind;
    int subs;
    CommitOptions options;
    const char* paper_static;
    const char* paper_measured;
  };
  const Case cases[] = {
      {"Local update", CommitProtocol::kTwoPhase, TxnKind::kWrite, 0,
       CommitOptions::Optimized(), "24.5", "31"},
      {"Local read", CommitProtocol::kTwoPhase, TxnKind::kRead, 0, CommitOptions::Optimized(),
       "9.5", "13"},
      {"1-sub update (2PC)", CommitProtocol::kTwoPhase, TxnKind::kWrite, 1,
       CommitOptions::Optimized(), "99.5", "110"},
      {"1-sub update (NBC)", CommitProtocol::kNonBlocking, TxnKind::kWrite, 1,
       CommitOptions::NonBlocking(), "150", "145-160"},
      {"1-sub read (NBC)", CommitProtocol::kNonBlocking, TxnKind::kRead, 1,
       CommitOptions::NonBlocking(), "70", "101"},
  };

  std::printf("--- Static vs empirical (completion path) ---\n");
  Table table({"TRANSACTION", "OUR STATIC (ms)", "OUR MEASURED (ms)", "UNDERESTIMATE",
               "PAPER STATIC", "PAPER MEASURED"});
  for (const auto& c : cases) {
    const double predicted = CompletionPath(c.protocol, c.kind, c.subs).TotalMs();
    LatencyConfig cfg;
    cfg.subordinates = c.subs;
    cfg.kind = c.kind;
    cfg.options = c.options;
    cfg.repetitions = 100;
    LatencyResult result = RunLatencyExperiment(cfg);
    const double measured = result.total_ms.mean();
    char under[32];
    std::snprintf(under, sizeof(under), "%+.1f%%", (measured - predicted) / predicted * 100.0);
    table.AddRow({c.name, Table::Num(predicted, 1), result.total_ms.MeanStddevString(), under,
                  c.paper_static, c.paper_measured});
  }
  table.Print();

  // --- Primitive-count conformance: predicted vs measured, from the ledger.
  //
  // The ms comparison above is stochastic; this one is exact. Each cell runs
  // one fault-free minimal transaction in a deterministic Table-2-calibrated
  // world and diffs the cost ledger against the static analysis's expected
  // primitive-count vector. Every delta must be zero and every measured ms
  // must be at or above the prediction (the analysis ignores CPU).
  struct ConformanceCase {
    const char* name;
    TxnKind kind;
    CommitOptions options;
  };
  const ConformanceCase conformance_cases[] = {
      {"2pc_write", TxnKind::kWrite, CommitOptions::Optimized()},
      {"2pc_read", TxnKind::kRead, CommitOptions::Optimized()},
      {"nbc_write", TxnKind::kWrite, CommitOptions::NonBlocking()},
      {"nbc_read", TxnKind::kRead, CommitOptions::NonBlocking()},
  };

  std::printf("\n--- Primitive counts: predicted vs measured (1 subordinate) ---\n");
  Table count_table({"TRANSACTION", "PRIMITIVE", "PREDICTED", "MEASURED", "DELTA"});
  std::string json = "{\n  \"subordinates\": 1,\n  \"cases\": [\n";
  bool first_case = true;
  for (const auto& c : conformance_cases) {
    ConformanceScenario scenario;
    scenario.options = c.options;
    scenario.kind = c.kind;
    scenario.subordinates = 1;
    const ConformanceReport report = RunConformanceScenario(scenario);

    CountVector keys = report.predicted;
    AddCounts(keys, report.measured);  // Union of keys; values unused below.
    for (const auto& [key, unused] : keys) {
      const int64_t predicted_n =
          report.predicted.count(key) ? report.predicted.at(key) : 0;
      const int64_t measured_n = report.measured.count(key) ? report.measured.at(key) : 0;
      count_table.AddRow({c.name, key, std::to_string(predicted_n),
                          std::to_string(measured_n),
                          std::to_string(measured_n - predicted_n)});
    }

    if (!first_case) {
      json += ",\n";
    }
    first_case = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"txn_ok\": %s, \"counts_match\": %s, "
                  "\"predicted_ms\": %.1f, \"measured_ms\": %.1f, \"latency_ok\": %s,\n"
                  "     \"counts\": {",
                  c.name, report.txn_status.ok() ? "true" : "false",
                  report.counts_match ? "true" : "false", report.predicted_ms,
                  report.measured_ms, report.latency_ok ? "true" : "false");
    json += buf;
    bool first_key = true;
    for (const auto& [key, unused] : keys) {
      const int64_t predicted_n =
          report.predicted.count(key) ? report.predicted.at(key) : 0;
      const int64_t measured_n = report.measured.count(key) ? report.measured.at(key) : 0;
      std::snprintf(buf, sizeof(buf), "%s\n       \"%s\": {\"predicted\": %lld, "
                    "\"measured\": %lld, \"delta\": %lld}",
                    first_key ? "" : ",", key.c_str(),
                    static_cast<long long>(predicted_n),
                    static_cast<long long>(measured_n),
                    static_cast<long long>(measured_n - predicted_n));
      first_key = false;
      json += buf;
    }
    json += "}}";
    if (!report.ok()) {
      std::printf("CONFORMANCE VIOLATION (%s):\n%s", c.name, report.Explain().c_str());
    }
  }
  json += "\n  ]\n}\n";
  count_table.Print();
  std::printf("\n--- Conformance report (JSON) ---\n%s", json.c_str());

  std::printf("\n--- Off the critical path (must still happen) ---\n");
  std::printf("  subordinate commit record append (lazy, optimized variant)\n");
  std::printf("  commit-ack datagram (piggybacked after the record is durable)\n");
  std::printf("  coordinator End record append (presumed abort epilogue, never forced)\n");
  std::printf("  drop-locks one-way messages to local servers\n");
  std::printf("\nThe method's bias reproduces: static analysis UNDERESTIMATES measurement\n"
              "(unmodelled CPU inside processes), and is proportionally worse for small\n"
              "transactions, as the paper observes.\n");
  return 0;
}
