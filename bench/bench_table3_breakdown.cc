// Table 3: "Latency Breakdown" — static analysis vs empirical measurement.
//
// The upper portion lists, in approximate order, the events on the critical
// path and their latencies; the middle compares static and empirical analyses;
// the lower portion lists operations that must happen but are off the critical
// path. The paper's static analysis accounts for 24.5 of 31 ms (local update),
// 99.5 of 110 ms (1-subordinate update), and 9.5 of 13 ms (local read): an
// UNDERESTIMATE, worse in relative terms for smaller transactions, because CPU
// time inside processes is ignored.
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/table.h"

namespace {

void PrintPath(const char* title, const camelot::PathAnalysis& path) {
  std::printf("%s\n", title);
  camelot::Table table({"EVENT (critical-path order)", "ms"});
  for (const auto& ev : path.events) {
    table.AddRow({ev.name, camelot::Table::Num(ev.ms, 1)});
  }
  table.AddRow({"TOTAL", camelot::Table::Num(path.TotalMs(), 1)});
  table.Print();
  std::printf("  formula: %s\n\n", path.Formula().c_str());
}

}  // namespace

int main() {
  using namespace camelot;
  std::printf("=== Table 3: Latency Breakdown (static analysis vs empirical) ===\n\n");

  PrintPath("--- Critical path, local update transaction ---",
            CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 0));
  PrintPath("--- Critical path, 1-subordinate update (optimized 2PC) ---",
            CriticalPath(CommitProtocol::kTwoPhase, TxnKind::kWrite, 1));
  PrintPath("--- Critical path, 1-subordinate update (non-blocking) ---",
            CriticalPath(CommitProtocol::kNonBlocking, TxnKind::kWrite, 1));

  struct Case {
    const char* name;
    CommitProtocol protocol;
    TxnKind kind;
    int subs;
    CommitOptions options;
    const char* paper_static;
    const char* paper_measured;
  };
  const Case cases[] = {
      {"Local update", CommitProtocol::kTwoPhase, TxnKind::kWrite, 0,
       CommitOptions::Optimized(), "24.5", "31"},
      {"Local read", CommitProtocol::kTwoPhase, TxnKind::kRead, 0, CommitOptions::Optimized(),
       "9.5", "13"},
      {"1-sub update (2PC)", CommitProtocol::kTwoPhase, TxnKind::kWrite, 1,
       CommitOptions::Optimized(), "99.5", "110"},
      {"1-sub update (NBC)", CommitProtocol::kNonBlocking, TxnKind::kWrite, 1,
       CommitOptions::NonBlocking(), "150", "145-160"},
      {"1-sub read (NBC)", CommitProtocol::kNonBlocking, TxnKind::kRead, 1,
       CommitOptions::NonBlocking(), "70", "101"},
  };

  std::printf("--- Static vs empirical (completion path) ---\n");
  Table table({"TRANSACTION", "OUR STATIC (ms)", "OUR MEASURED (ms)", "UNDERESTIMATE",
               "PAPER STATIC", "PAPER MEASURED"});
  for (const auto& c : cases) {
    const double predicted = CompletionPath(c.protocol, c.kind, c.subs).TotalMs();
    LatencyConfig cfg;
    cfg.subordinates = c.subs;
    cfg.kind = c.kind;
    cfg.options = c.options;
    cfg.repetitions = 100;
    LatencyResult result = RunLatencyExperiment(cfg);
    const double measured = result.total_ms.mean();
    char under[32];
    std::snprintf(under, sizeof(under), "%+.1f%%", (measured - predicted) / predicted * 100.0);
    table.AddRow({c.name, Table::Num(predicted, 1), result.total_ms.MeanStddevString(), under,
                  c.paper_static, c.paper_measured});
  }
  table.Print();

  std::printf("\n--- Off the critical path (must still happen) ---\n");
  std::printf("  subordinate commit record append (lazy, optimized variant)\n");
  std::printf("  commit-ack datagram (piggybacked after the record is durable)\n");
  std::printf("  coordinator End record append (presumed abort epilogue, never forced)\n");
  std::printf("  drop-locks one-way messages to local servers\n");
  std::printf("\nThe method's bias reproduces: static analysis UNDERESTIMATES measurement\n"
              "(unmodelled CPU inside processes), and is proportionally worse for small\n"
              "transactions, as the paper observes.\n");
  return 0;
}
