// Figure 2: "Latency of Transactions, Two-phase Commit (subordinates vs ms)".
//
// The paper's basic experiment: a minimal transaction (one small operation at
// a single server at each site) on a coordinator plus 0..3 subordinates, in
// four variants:
//   1. optimized write      (commit record not forced, ack piggybacked)
//   2. semi-optimized write (commit record forced, ack piggybacked)
//   3. unoptimized write    (commit record forced, ack immediate)
//   4. read
// plus the derived transaction-management-only cost for the optimized write
// and the read. Standard deviations in parentheses; both the latency ordering
// (unopt > semi > opt > read) and the variance growth with N are the paper's
// headline observations.
#include <cstdio>

#include "src/harness/experiments.h"
#include "src/stats/ascii_chart.h"
#include "src/stats/table.h"

int main() {
  using namespace camelot;
  std::printf("=== Figure 2: Latency of Transactions, Two-phase Commit ===\n");
  std::printf("(100 repetitions per point; mean ms with stddev in parentheses)\n\n");

  struct Variant {
    const char* name;
    TxnKind kind;
    CommitOptions options;
  };
  const Variant variants[] = {
      {"Optimized write", TxnKind::kWrite, CommitOptions::Optimized()},
      {"Semi-optimized write", TxnKind::kWrite, CommitOptions::Intermediate()},
      {"Unoptimized write", TxnKind::kWrite, CommitOptions::Unoptimized()},
      {"Read", TxnKind::kRead, CommitOptions::Optimized()},
  };

  Table table({"SERIES", "0 subs", "1 sub", "2 subs", "3 subs"});
  AsciiChart chart("subordinates", "latency (ms)");
  LatencyResult optimized[4];
  LatencyResult reads[4];
  const char markers[] = {'o', 's', 'u', 'r'};
  int variant_index = 0;
  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.name};
    std::vector<double> xs;
    std::vector<double> ys;
    for (int subs = 0; subs <= 3; ++subs) {
      LatencyConfig cfg;
      cfg.subordinates = subs;
      cfg.kind = variant.kind;
      cfg.options = variant.options;
      cfg.repetitions = 100;
      cfg.seed = 17 + static_cast<uint64_t>(subs);
      LatencyResult result = RunLatencyExperiment(cfg);
      row.push_back(result.total_ms.MeanStddevString());
      xs.push_back(subs);
      ys.push_back(result.total_ms.mean());
      if (variant.options.force_subordinate_commit == false && variant.kind == TxnKind::kWrite) {
        optimized[subs] = result;
      }
      if (variant.kind == TxnKind::kRead) {
        reads[subs] = result;
      }
    }
    table.AddRow(row);
    chart.AddSeries(variant.name, markers[variant_index++ % 4], xs, ys);
  }
  // Derived TM-only series (total minus 3.5 + 29N of operation processing).
  {
    std::vector<std::string> row{"TranMgmt, optimized write"};
    for (int subs = 0; subs <= 3; ++subs) {
      row.push_back(optimized[subs].tm_ms.MeanStddevString());
    }
    table.AddRow(row);
  }
  {
    std::vector<std::string> row{"TranMgmt, read"};
    for (int subs = 0; subs <= 3; ++subs) {
      row.push_back(reads[subs].tm_ms.MeanStddevString());
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
  chart.Print();

  std::printf("\nPaper reference points (measured on the RT testbed):\n");
  std::printf("  local update 31 (1); 1-sub optimized update 110 (7); stddev grows with N:\n");
  std::printf("  (1) -> (7)/(17) -> (36) -> (39)/(50); unoptimized > semi-optimized >\n");
  std::printf("  optimized; reads far below writes.\n");
  std::printf("\nExpected shapes that must hold here: the same ordering of the four series,\n");
  std::printf("TM-only cost roughly flat-but-noisy in N, and stddev rising with N.\n");
  return 0;
}
