// Engine microbenchmarks with a committed perf trajectory.
//
// Measures the simulation engine itself — not the modeled system — so the
// numbers are host-seconds, not virtual seconds:
//
//   post_drain        events/sec posting+draining a steady 512k-event working
//                     set with delays spanning the ready list, every rung of
//                     the ladder, and the overflow heap; run on both the
//                     production ladder queue and the preserved pre-ladder
//                     binary heap (src/sim/legacy_heap_scheduler.h) so the
//                     speedup is a machine-independent ratio.
//   timer_churn       events/sec for cancel-heavy timer wheels: most posted
//                     timers fire as cheap no-ops (the common "timeout armed
//                     but RPC answered" shape), ~1.6M pending at steady state.
//                     One full timeout window runs untimed first so both
//                     engines are measured at steady state; both engines again.
//   pingpong          coroutine round-trips/sec between two tasks over a pair
//                     of channels.
//   channel_storm     channel sends/sec with 64 producers fanning into one
//                     consumer.
//   world_commit      committed transactions/sec of host time for the full
//                     Camelot world (Fig. 4 update workload, 4 pairs).
//   sweep             exhaustive crash-sweep wall-clock at 1 thread vs the
//                     host default (each schedule is an independent World, so
//                     the parallel run is bit-identical; see parallel.h).
//   calibration       a fixed xorshift spin, iterations/sec — a pure-CPU
//                     yardstick the regression gate divides by so thresholds
//                     survive host changes.
//
// Flags: --quick (shorter runs, used by the CI perf smoke job) and
// --json=PATH (write the machine-readable results; also always printed on a
// single trailing "JSON: {...}" line). scripts/compare_bench_engine.py gates
// CI on events/sec regressions vs the committed BENCH_engine.json baseline.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/harness/crash_explorer.h"
#include "src/harness/experiments.h"
#include "src/harness/parallel.h"
#include "src/sim/channel.h"
#include "src/sim/legacy_heap_scheduler.h"
#include "src/sim/scheduler.h"
#include "src/sim/task.h"
#include "src/stats/table.h"

namespace camelot {
namespace {

double NowSec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Delay menu matching the determinism tests: ready list (0), bottom slots,
// rung-1 and rung-2 buckets, and (rarely) the overflow heap beyond the ~18min
// ladder horizon. 16 entries so indexing is a mask, not a division.
constexpr SimDuration kDelays[] = {
    0,       1,       640,     1024,  4096, 50000, 999999,        1048576,
    2097152, 5000000, 0,       1,     640,  4096,  50000,         2000000000};

// Steady-state post/drain: prime `working_set` pending events (untimed), then
// each handler posts one replacement, keeping queue occupancy constant while
// `total` events execute. The 24-byte capture exceeds libstdc++'s
// std::function inline buffer but fits EventFn's 56-byte slot, which is the
// realistic shape — scheduler thunks capture a couple of pointers plus state.
template <typename Sched>
double PostDrainEventsPerSec(uint64_t total, size_t working_set) {
  Sched sched(1);
  struct State {
    Sched* sched;
    uint64_t remaining;
    uint64_t mix = 0x9e3779b97f4a7c15ULL;
  } state{&sched, total};

  struct Poster {
    static void Post(State* s, uint64_t salt) {
      s->mix ^= s->mix << 13;
      s->mix ^= s->mix >> 7;
      s->mix ^= s->mix << 17;
      const SimDuration d = kDelays[(s->mix + salt) & (std::size(kDelays) - 1)];
      const uint64_t tag = s->mix;
      s->sched->Post(d, [s, salt, tag] {
        if (s->remaining == 0) {
          return;
        }
        --s->remaining;
        Post(s, salt + (tag & 1) + 1);
      });
    }
  };

  for (size_t i = 0; i < working_set; ++i) {
    Poster::Post(&state, i);
  }
  const double t0 = NowSec();
  while (state.remaining > 0) {
    sched.RunUntilIdle(1 << 14);
  }
  const double dt = NowSec() - t0;
  sched.RunUntilIdle();  // Drain the tail so nothing leaks.
  return static_cast<double>(total) / dt;
}

// Cancel-heavy timers: every event arms a "timeout" far in the future whose
// handler is a no-op by the time it fires (flag already cleared), plus a
// near-term event that keeps the workload running. This is the dominant
// scheduler shape in the RPC layer (retransmit timers that almost never win).
// One full timeout window runs untimed first: until timeouts start
// expiring the binary heap only ever touches its leaves (far-future inserts
// sift nowhere), which flatters it well beyond anything a real run sees.
template <typename Sched>
double TimerChurnEventsPerSec(uint64_t total) {
  constexpr SimDuration kTimeout = 50000;
  Sched sched(1);
  struct State {
    Sched* sched;
    uint64_t remaining;
  } state{&sched, total};

  struct Poster {
    static void Post(State* s, uint64_t i) {
      // The timeout that fires ~50ms later and finds nothing to do; at this
      // posting rate ~1.6M of them are pending at any instant.
      s->sched->Post(kTimeout + static_cast<SimDuration>(i % 997), [] {});
      // The "reply" that arrives quickly and continues the chain.
      s->sched->Post(1 + static_cast<SimDuration>(i % 61), [s, i] {
        if (s->remaining < 2) {
          s->remaining = 0;
          return;
        }
        s->remaining -= 2;
        Post(s, i + 1);
      });
    }
  };

  for (int i = 0; i < 1024; ++i) {
    Poster::Post(&state, static_cast<uint64_t>(i) * 7919);
  }
  sched.RunUntil(sched.now() + kTimeout + 1000);
  const uint64_t timed = state.remaining;
  const double t0 = NowSec();
  while (state.remaining > 0) {
    sched.RunUntilIdle(1 << 14);
  }
  const double dt = NowSec() - t0;
  sched.RunUntilIdle();
  return static_cast<double>(timed) / dt;
}

Async<void> PingTask(Scheduler& sched, Channel<int>& ping, Channel<int>& pong,
                     uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    ping.Send(static_cast<int>(i));
    co_await pong.Receive();
  }
  (void)sched;
}

Async<void> PongTask(Channel<int>& ping, Channel<int>& pong, uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    co_await ping.Receive();
    pong.Send(1);
  }
}

double PingPongRoundsPerSec(uint64_t rounds) {
  Scheduler sched(1);
  Channel<int> ping(sched);
  Channel<int> pong(sched);
  sched.Spawn(PongTask(ping, pong, rounds));
  sched.Spawn(PingTask(sched, ping, pong, rounds));
  const double t0 = NowSec();
  sched.RunUntilIdle();
  return static_cast<double>(rounds) / (NowSec() - t0);
}

Async<void> StormProducer(Scheduler& sched, Channel<uint64_t>& ch, uint64_t items,
                          uint64_t id) {
  for (uint64_t i = 0; i < items; ++i) {
    co_await sched.Delay(1 + static_cast<SimDuration>((id * 31 + i) % 97));
    ch.Send(id);
  }
}

Async<void> StormConsumer(Channel<uint64_t>& ch, uint64_t total, uint64_t* seen) {
  for (uint64_t i = 0; i < total; ++i) {
    co_await ch.Receive();
    ++*seen;
  }
}

double ChannelStormSendsPerSec(uint64_t total) {
  Scheduler sched(1);
  Channel<uint64_t> ch(sched);
  const uint64_t producers = 64;
  const uint64_t per = total / producers;
  uint64_t seen = 0;
  sched.Spawn(StormConsumer(ch, per * producers, &seen));
  for (uint64_t p = 0; p < producers; ++p) {
    sched.Spawn(StormProducer(sched, ch, per, p));
  }
  const double t0 = NowSec();
  sched.RunUntilIdle();
  const double dt = NowSec() - t0;
  return static_cast<double>(seen) / dt;
}

// Full-world throughput: committed txns per host second (virtual duration is
// fixed, so this tracks how fast the engine turns the crank on the complete
// stack: network, WAL, lock manager, commit protocol, oracles off).
double WorldCommitsPerHostSec(SimDuration virtual_duration) {
  ThroughputConfig cfg;
  cfg.pairs = 4;
  cfg.duration = virtual_duration;
  const double t0 = NowSec();
  const ThroughputResult r = RunThroughputExperiment(cfg);
  const double dt = NowSec() - t0;
  return static_cast<double>(r.commits) / dt;
}

double SweepWallClock(int threads, int* runs) {
  ExplorerConfig cfg;
  cfg.seed = 3;
  cfg.sweep_threads = threads;
  CrashExplorer explorer(cfg);
  const double t0 = NowSec();
  const auto failures = explorer.ExhaustiveSingleCrashSweep(1, runs);
  (void)failures;
  return NowSec() - t0;
}

// Pure-CPU yardstick: xorshift64* iterations per second. Scheduler-free, so
// the ratio bench/calibration is comparable across hosts of different speeds.
double CalibrationItersPerSec() {
  const uint64_t iters = 200'000'000;
  uint64_t x = 88172645463325252ULL;
  const double t0 = NowSec();
  for (uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  const double dt = NowSec() - t0;
  if (x == 0) {  // Defeat dead-code elimination.
    std::printf("impossible\n");
  }
  return static_cast<double>(iters) / dt;
}

struct Metric {
  std::string name;
  double value;
  std::string unit;
};

std::string JsonLine(const std::vector<Metric>& metrics, bool quick) {
  std::string out = "{\"bench\":\"engine\",\"quick\":";
  out += quick ? "true" : "false";
  out += ",\"host_cores\":" + std::to_string(std::thread::hardware_concurrency());
  for (const Metric& m : metrics) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.1f", m.name.c_str(), m.value);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace
}  // namespace camelot

int main(int argc, char** argv) {
  using namespace camelot;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  const uint64_t scale = quick ? 1 : 4;
  std::vector<Metric> metrics;
  auto add = [&metrics](const char* name, double value, const char* unit) {
    metrics.push_back({name, value, unit});
    return value;
  };

  std::printf("=== Engine benchmarks (%s) ===\n\n", quick ? "quick" : "full");

  const double calib = add("calibration_iters_per_sec", CalibrationItersPerSec(), "iters/s");

  const double pd_ladder = add(
      "post_drain_ladder_eps",
      PostDrainEventsPerSec<Scheduler>(scale * 2'000'000, 512 * 1024), "events/s");
  const double pd_heap = add(
      "post_drain_heap_eps",
      PostDrainEventsPerSec<LegacyHeapScheduler>(scale * 1'000'000, 512 * 1024),
      "events/s");

  // Timer churn primes ~3.3M events per 50ms window before timing starts, so
  // totals must stay several windows long even in quick mode.
  const double tc_ladder = add(
      "timer_churn_ladder_eps",
      TimerChurnEventsPerSec<Scheduler>(quick ? 8'000'000 : 16'000'000),
      "events/s");
  const double tc_heap = add(
      "timer_churn_heap_eps",
      TimerChurnEventsPerSec<LegacyHeapScheduler>(quick ? 6'000'000 : 10'000'000),
      "events/s");

  add("pingpong_rounds_per_sec", PingPongRoundsPerSec(scale * 200'000), "rounds/s");
  add("channel_storm_sends_per_sec", ChannelStormSendsPerSec(scale * 512'000),
      "sends/s");
  add("world_commits_per_host_sec", WorldCommitsPerHostSec(quick ? Sec(20) : Sec(60)),
      "commits/s");

  int runs1 = 0;
  int runsN = 0;
  const int sweep_threads = DefaultSweepThreads();
  const double sweep1 = SweepWallClock(1, &runs1);
  const double sweepN = SweepWallClock(sweep_threads, &runsN);
  add("sweep_serial_sec", sweep1, "s");
  add("sweep_parallel_sec", sweepN, "s");
  add("sweep_threads", sweep_threads, "threads");
  if (runs1 != runsN) {
    std::fprintf(stderr, "sweep run counts diverged: %d vs %d\n", runs1, runsN);
    return 1;
  }

  Table table({"METRIC", "VALUE", "UNIT"});
  for (const Metric& m : metrics) {
    table.AddRow({m.name, Table::Num(m.value, 1), m.unit});
  }
  table.Print();

  std::printf("\nladder vs heap: post/drain %.2fx, timer churn %.2fx\n",
              pd_ladder / pd_heap, tc_ladder / tc_heap);
  std::printf("sweep (%d runs): %.2fs serial -> %.2fs at %d threads (%.2fx)\n", runs1,
              sweep1, sweepN, sweep_threads, sweep1 / sweepN);
  std::printf("normalized post/drain: %.3f events per 1k calibration iters\n",
              1000.0 * pd_ladder / calib);

  const std::string json = JsonLine(metrics, quick);
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  std::printf("\nJSON: %s\n", json.c_str());
  return 0;
}
