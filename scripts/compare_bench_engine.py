#!/usr/bin/env python3
"""Gate engine-bench results against the committed baseline.

Usage: compare_bench_engine.py BASELINE.json CURRENT.json [--threshold=0.25]

Both files are single-line JSON objects written by `bench_engine --json=PATH`.
Two kinds of gate:

  1. Normalized throughput. Raw events/sec numbers move with the host, so each
     throughput metric is divided by that run's calibration_iters_per_sec (a
     pure-CPU xorshift spin measured in the same process) before comparing.
     A normalized drop of more than --threshold (default 25%) fails.

  2. Ladder-vs-heap speedup floors. The ratio of the production ladder queue
     to the preserved legacy binary heap is host-independent by construction
     (same process, same machine, same workload). The floors are set well
     below the committed trajectory so only a real engine regression — not
     bench noise — trips them.

CI runs this in the perf-smoke job against `bench_engine --quick`. To land a
change that legitimately shifts the baseline (an intentional trade-off, or a
workload change in bench_engine itself), apply the `perf-baseline-reset` label
to the PR — the job is skipped — and commit a refreshed BENCH_engine.json from
a full (non-quick) run; see EXPERIMENTS.md.
"""

import json
import sys

# Metrics gated after normalizing by calibration_iters_per_sec.
NORMALIZED_METRICS = [
    "post_drain_ladder_eps",
    "timer_churn_ladder_eps",
    "pingpong_rounds_per_sec",
    "channel_storm_sends_per_sec",
    "world_commits_per_host_sec",
]

# (numerator, denominator, floor): machine-independent speedup gates.
RATIO_FLOORS = [
    ("post_drain_ladder_eps", "post_drain_heap_eps", 4.0),
    ("timer_churn_ladder_eps", "timer_churn_heap_eps", 4.0),
]


def load(path):
    with open(path) as f:
        data = json.loads(f.read())
    calib = data.get("calibration_iters_per_sec", 0.0)
    if calib <= 0:
        sys.exit(f"{path}: missing or zero calibration_iters_per_sec")
    return data


def main(argv):
    threshold = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)
    base, cur = load(paths[0]), load(paths[1])

    failures = []
    print(f"{'metric':<34} {'base/calib':>12} {'cur/calib':>12} {'delta':>8}")
    for name in NORMALIZED_METRICS:
        if name not in base or name not in cur:
            failures.append(f"{name}: missing from one of the files")
            continue
        b = base[name] / base["calibration_iters_per_sec"]
        c = cur[name] / cur["calibration_iters_per_sec"]
        delta = (c - b) / b
        flag = ""
        if delta < -threshold:
            failures.append(
                f"{name}: normalized throughput fell {-delta:.1%} "
                f"(limit {threshold:.0%})")
            flag = "  <-- FAIL"
        print(f"{name:<34} {b * 1e6:>12.3f} {c * 1e6:>12.3f} {delta:>+7.1%}{flag}")

    for num, den, floor in RATIO_FLOORS:
        if num not in cur or den not in cur or cur[den] <= 0:
            failures.append(f"{num}/{den}: missing from current run")
            continue
        ratio = cur[num] / cur[den]
        flag = ""
        if ratio < floor:
            failures.append(f"{num}/{den}: speedup {ratio:.2f}x below floor {floor}x")
            flag = "  <-- FAIL"
        print(f"{num + '/' + den:<34} {'':>12} {f'{ratio:.2f}x':>12} {'>=' + str(floor):>8}{flag}")

    if failures:
        print("\nperf gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf this shift is intentional, label the PR `perf-baseline-reset`")
        print("and refresh BENCH_engine.json from a full run (see EXPERIMENTS.md).")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
