#!/usr/bin/env python3
"""Gate overload-bench results against the committed baseline.

Usage: compare_bench_overload.py BASELINE.json CURRENT.json [--threshold=0.3]

Both files are single-line JSON objects written by `bench_overload
--json=PATH`. Unlike bench_engine, every number here is VIRTUAL-time goodput,
so runs are deterministic per seed and host-independent: no calibration
normalization is needed, and shifts mean the modeled system changed.

Three kinds of gate:

  1. Oracle booleans. Every `*_ok` metric in the current run must be 1 (the
     overload oracles held) and `collapse_confirmed` must be 1 (the
     shedding-disabled arm demonstrably collapsed).

  2. Goodput floors vs the baseline. Each `*_spike_goodput_tps` and
     `*_recovered_goodput_tps` present in BOTH files must not fall more than
     --threshold (default 30%) below the committed value. Buckets are small
     integers over short virtual windows, so the threshold absorbs one-commit
     quantization while still catching a real capacity regression.

  3. A/B separation. For every shedding variant in the current run, the
     collapse arm's p99 must exceed that variant's p99 by at least 2x —
     admission control must visibly bound latency that the collapse arm does
     not.

CI runs this in the perf-smoke job against `bench_overload --quick`. To land
a change that legitimately shifts goodput (protocol cost changes move the
knee), apply the `perf-baseline-reset` label — the job is skipped — and
commit a refreshed BENCH_overload.json from a full run; see EXPERIMENTS.md.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.loads(f.read())


def main(argv):
    threshold = 0.3
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)
    base, cur = load(paths[0]), load(paths[1])

    failures = []

    for name, value in sorted(cur.items()):
        if name.endswith("_ok") or name == "collapse_confirmed":
            if value != 1:
                failures.append(f"{name}: expected 1, got {value}")

    print(f"{'metric':<34} {'base':>10} {'cur':>10} {'delta':>8}")
    for name in sorted(base):
        if not name.endswith(("_spike_goodput_tps", "_recovered_goodput_tps")):
            continue
        if name.startswith("collapse_") or name not in cur:
            continue  # The collapse arm is SUPPOSED to crater.
        b, c = base[name], cur[name]
        if b <= 0:
            continue
        delta = (c - b) / b
        flag = ""
        if delta < -threshold:
            failures.append(
                f"{name}: goodput fell {-delta:.1%} (limit {threshold:.0%})")
            flag = "  <-- FAIL"
        print(f"{name:<34} {b:>10.2f} {c:>10.2f} {delta:>+7.1%}{flag}")

    collapse_p99 = cur.get("collapse_p99_ms", 0)
    for name in sorted(cur):
        if not name.endswith("_p99_ms") or name.startswith(("collapse_", "storm_")):
            continue
        ratio = collapse_p99 / cur[name] if cur[name] > 0 else 0
        flag = ""
        if ratio < 2.0:
            failures.append(
                f"collapse_p99_ms/{name}: separation {ratio:.2f}x below 2x "
                "(admission control no longer bounds latency the collapse arm "
                "does not)")
            flag = "  <-- FAIL"
        print(f"{'collapse_p99/' + name:<34} {'':>10} {f'{ratio:.2f}x':>10} {'>=2x':>8}{flag}")

    if failures:
        print("\noverload perf gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf this shift is intentional, label the PR `perf-baseline-reset`")
        print("and refresh BENCH_overload.json from a full run (see EXPERIMENTS.md).")
        return 1
    print("\noverload perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
