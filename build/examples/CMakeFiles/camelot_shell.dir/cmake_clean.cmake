file(REMOVE_RECURSE
  "CMakeFiles/camelot_shell.dir/camelot_shell.cpp.o"
  "CMakeFiles/camelot_shell.dir/camelot_shell.cpp.o.d"
  "camelot_shell"
  "camelot_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
