# Empty compiler generated dependencies file for camelot_shell.
# This may be replaced when dependencies are built.
