file(REMOVE_RECURSE
  "CMakeFiles/nonblocking_inventory.dir/nonblocking_inventory.cpp.o"
  "CMakeFiles/nonblocking_inventory.dir/nonblocking_inventory.cpp.o.d"
  "nonblocking_inventory"
  "nonblocking_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonblocking_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
