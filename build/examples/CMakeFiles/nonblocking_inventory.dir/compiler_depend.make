# Empty compiler generated dependencies file for nonblocking_inventory.
# This may be replaced when dependencies are built.
