file(REMOVE_RECURSE
  "CMakeFiles/nested_travel.dir/nested_travel.cpp.o"
  "CMakeFiles/nested_travel.dir/nested_travel.cpp.o.d"
  "nested_travel"
  "nested_travel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_travel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
