# Empty dependencies file for nested_travel.
# This may be replaced when dependencies are built.
