# Empty compiler generated dependencies file for blocked_operator.
# This may be replaced when dependencies are built.
