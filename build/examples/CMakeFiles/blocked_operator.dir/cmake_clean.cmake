file(REMOVE_RECURSE
  "CMakeFiles/blocked_operator.dir/blocked_operator.cpp.o"
  "CMakeFiles/blocked_operator.dir/blocked_operator.cpp.o.d"
  "blocked_operator"
  "blocked_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
