file(REMOVE_RECURSE
  "CMakeFiles/tranman_test.dir/tranman_test.cc.o"
  "CMakeFiles/tranman_test.dir/tranman_test.cc.o.d"
  "tranman_test"
  "tranman_test.pdb"
  "tranman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tranman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
