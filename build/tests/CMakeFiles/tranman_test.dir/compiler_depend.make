# Empty compiler generated dependencies file for tranman_test.
# This may be replaced when dependencies are built.
