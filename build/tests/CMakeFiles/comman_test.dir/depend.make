# Empty dependencies file for comman_test.
# This may be replaced when dependencies are built.
