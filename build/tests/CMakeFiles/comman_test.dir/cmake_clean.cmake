file(REMOVE_RECURSE
  "CMakeFiles/comman_test.dir/comman_test.cc.o"
  "CMakeFiles/comman_test.dir/comman_test.cc.o.d"
  "comman_test"
  "comman_test.pdb"
  "comman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
