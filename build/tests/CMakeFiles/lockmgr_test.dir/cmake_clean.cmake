file(REMOVE_RECURSE
  "CMakeFiles/lockmgr_test.dir/lockmgr_test.cc.o"
  "CMakeFiles/lockmgr_test.dir/lockmgr_test.cc.o.d"
  "lockmgr_test"
  "lockmgr_test.pdb"
  "lockmgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
