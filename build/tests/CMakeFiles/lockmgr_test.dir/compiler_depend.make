# Empty compiler generated dependencies file for lockmgr_test.
# This may be replaced when dependencies are built.
