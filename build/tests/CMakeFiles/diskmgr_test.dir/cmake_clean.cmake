file(REMOVE_RECURSE
  "CMakeFiles/diskmgr_test.dir/diskmgr_test.cc.o"
  "CMakeFiles/diskmgr_test.dir/diskmgr_test.cc.o.d"
  "diskmgr_test"
  "diskmgr_test.pdb"
  "diskmgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
