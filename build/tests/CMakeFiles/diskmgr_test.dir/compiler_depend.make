# Empty compiler generated dependencies file for diskmgr_test.
# This may be replaced when dependencies are built.
