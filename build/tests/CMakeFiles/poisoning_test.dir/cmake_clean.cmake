file(REMOVE_RECURSE
  "CMakeFiles/poisoning_test.dir/poisoning_test.cc.o"
  "CMakeFiles/poisoning_test.dir/poisoning_test.cc.o.d"
  "poisoning_test"
  "poisoning_test.pdb"
  "poisoning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
