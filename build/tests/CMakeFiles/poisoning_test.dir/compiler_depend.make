# Empty compiler generated dependencies file for poisoning_test.
# This may be replaced when dependencies are built.
