# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lockmgr_test[1]_include.cmake")
include("/root/repo/build/tests/tranman_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/diskmgr_test[1]_include.cmake")
include("/root/repo/build/tests/comman_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/worker_pool_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/rwlock_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/poisoning_test[1]_include.cmake")
include("/root/repo/build/tests/site_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
