file(REMOVE_RECURSE
  "CMakeFiles/bench_rpc_breakdown.dir/bench_rpc_breakdown.cc.o"
  "CMakeFiles/bench_rpc_breakdown.dir/bench_rpc_breakdown.cc.o.d"
  "bench_rpc_breakdown"
  "bench_rpc_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpc_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
