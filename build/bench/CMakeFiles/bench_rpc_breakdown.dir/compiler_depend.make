# Empty compiler generated dependencies file for bench_rpc_breakdown.
# This may be replaced when dependencies are built.
