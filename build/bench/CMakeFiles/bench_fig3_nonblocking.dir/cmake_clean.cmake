file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nonblocking.dir/bench_fig3_nonblocking.cc.o"
  "CMakeFiles/bench_fig3_nonblocking.dir/bench_fig3_nonblocking.cc.o.d"
  "bench_fig3_nonblocking"
  "bench_fig3_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
