# Empty dependencies file for bench_fig3_nonblocking.
# This may be replaced when dependencies are built.
