# Empty compiler generated dependencies file for bench_fig5_read_tput.
# This may be replaced when dependencies are built.
