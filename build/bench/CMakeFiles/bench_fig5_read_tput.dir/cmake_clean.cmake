file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_read_tput.dir/bench_fig5_read_tput.cc.o"
  "CMakeFiles/bench_fig5_read_tput.dir/bench_fig5_read_tput.cc.o.d"
  "bench_fig5_read_tput"
  "bench_fig5_read_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_read_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
