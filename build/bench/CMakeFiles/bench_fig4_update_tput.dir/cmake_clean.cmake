file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_update_tput.dir/bench_fig4_update_tput.cc.o"
  "CMakeFiles/bench_fig4_update_tput.dir/bench_fig4_update_tput.cc.o.d"
  "bench_fig4_update_tput"
  "bench_fig4_update_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_update_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
