# Empty dependencies file for bench_fig4_update_tput.
# This may be replaced when dependencies are built.
