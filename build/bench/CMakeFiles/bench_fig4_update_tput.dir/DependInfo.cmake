
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_update_tput.cc" "bench/CMakeFiles/bench_fig4_update_tput.dir/bench_fig4_update_tput.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_update_tput.dir/bench_fig4_update_tput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/camelot_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/camelot_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/camelot_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/tranman/CMakeFiles/camelot_tranman.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/camelot_server.dir/DependInfo.cmake"
  "/root/repo/build/src/comman/CMakeFiles/camelot_comman.dir/DependInfo.cmake"
  "/root/repo/build/src/diskmgr/CMakeFiles/camelot_diskmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/lockmgr/CMakeFiles/camelot_lockmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/camelot_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/camelot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/camelot_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/camelot_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/camelot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/camelot_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
