# Empty compiler generated dependencies file for bench_multicast_variance.
# This may be replaced when dependencies are built.
