file(REMOVE_RECURSE
  "CMakeFiles/bench_multicast_variance.dir/bench_multicast_variance.cc.o"
  "CMakeFiles/bench_multicast_variance.dir/bench_multicast_variance.cc.o.d"
  "bench_multicast_variance"
  "bench_multicast_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
