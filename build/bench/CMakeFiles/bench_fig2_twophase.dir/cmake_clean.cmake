file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_twophase.dir/bench_fig2_twophase.cc.o"
  "CMakeFiles/bench_fig2_twophase.dir/bench_fig2_twophase.cc.o.d"
  "bench_fig2_twophase"
  "bench_fig2_twophase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
