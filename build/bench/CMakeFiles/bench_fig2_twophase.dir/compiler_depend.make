# Empty compiler generated dependencies file for bench_fig2_twophase.
# This may be replaced when dependencies are built.
