file(REMOVE_RECURSE
  "CMakeFiles/camelot_diskmgr.dir/disk_manager.cc.o"
  "CMakeFiles/camelot_diskmgr.dir/disk_manager.cc.o.d"
  "libcamelot_diskmgr.a"
  "libcamelot_diskmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_diskmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
