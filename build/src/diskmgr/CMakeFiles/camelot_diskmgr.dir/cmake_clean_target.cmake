file(REMOVE_RECURSE
  "libcamelot_diskmgr.a"
)
