# Empty compiler generated dependencies file for camelot_diskmgr.
# This may be replaced when dependencies are built.
