# Empty compiler generated dependencies file for camelot_lockmgr.
# This may be replaced when dependencies are built.
