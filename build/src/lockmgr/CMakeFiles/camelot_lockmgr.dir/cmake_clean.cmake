file(REMOVE_RECURSE
  "CMakeFiles/camelot_lockmgr.dir/lock_manager.cc.o"
  "CMakeFiles/camelot_lockmgr.dir/lock_manager.cc.o.d"
  "libcamelot_lockmgr.a"
  "libcamelot_lockmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_lockmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
