file(REMOVE_RECURSE
  "libcamelot_lockmgr.a"
)
