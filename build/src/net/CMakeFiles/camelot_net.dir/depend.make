# Empty dependencies file for camelot_net.
# This may be replaced when dependencies are built.
