file(REMOVE_RECURSE
  "CMakeFiles/camelot_net.dir/network.cc.o"
  "CMakeFiles/camelot_net.dir/network.cc.o.d"
  "libcamelot_net.a"
  "libcamelot_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
