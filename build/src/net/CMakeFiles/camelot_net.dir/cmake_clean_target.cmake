file(REMOVE_RECURSE
  "libcamelot_net.a"
)
