# Empty dependencies file for camelot_analysis.
# This may be replaced when dependencies are built.
