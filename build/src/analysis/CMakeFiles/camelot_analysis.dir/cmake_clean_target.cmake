file(REMOVE_RECURSE
  "libcamelot_analysis.a"
)
