file(REMOVE_RECURSE
  "CMakeFiles/camelot_analysis.dir/static_analysis.cc.o"
  "CMakeFiles/camelot_analysis.dir/static_analysis.cc.o.d"
  "libcamelot_analysis.a"
  "libcamelot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
