# Empty compiler generated dependencies file for camelot_sim.
# This may be replaced when dependencies are built.
