file(REMOVE_RECURSE
  "CMakeFiles/camelot_sim.dir/scheduler.cc.o"
  "CMakeFiles/camelot_sim.dir/scheduler.cc.o.d"
  "libcamelot_sim.a"
  "libcamelot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
