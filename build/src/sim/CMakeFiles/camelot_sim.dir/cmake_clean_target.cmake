file(REMOVE_RECURSE
  "libcamelot_sim.a"
)
