# Empty compiler generated dependencies file for camelot_comman.
# This may be replaced when dependencies are built.
