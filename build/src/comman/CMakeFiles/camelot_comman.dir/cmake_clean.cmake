file(REMOVE_RECURSE
  "CMakeFiles/camelot_comman.dir/comman.cc.o"
  "CMakeFiles/camelot_comman.dir/comman.cc.o.d"
  "libcamelot_comman.a"
  "libcamelot_comman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_comman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
