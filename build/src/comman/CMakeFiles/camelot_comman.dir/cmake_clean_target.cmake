file(REMOVE_RECURSE
  "libcamelot_comman.a"
)
