file(REMOVE_RECURSE
  "CMakeFiles/camelot_ipc.dir/name_service.cc.o"
  "CMakeFiles/camelot_ipc.dir/name_service.cc.o.d"
  "CMakeFiles/camelot_ipc.dir/netmsg.cc.o"
  "CMakeFiles/camelot_ipc.dir/netmsg.cc.o.d"
  "CMakeFiles/camelot_ipc.dir/site.cc.o"
  "CMakeFiles/camelot_ipc.dir/site.cc.o.d"
  "libcamelot_ipc.a"
  "libcamelot_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
