# Empty compiler generated dependencies file for camelot_ipc.
# This may be replaced when dependencies are built.
