file(REMOVE_RECURSE
  "libcamelot_ipc.a"
)
