
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/name_service.cc" "src/ipc/CMakeFiles/camelot_ipc.dir/name_service.cc.o" "gcc" "src/ipc/CMakeFiles/camelot_ipc.dir/name_service.cc.o.d"
  "/root/repo/src/ipc/netmsg.cc" "src/ipc/CMakeFiles/camelot_ipc.dir/netmsg.cc.o" "gcc" "src/ipc/CMakeFiles/camelot_ipc.dir/netmsg.cc.o.d"
  "/root/repo/src/ipc/site.cc" "src/ipc/CMakeFiles/camelot_ipc.dir/site.cc.o" "gcc" "src/ipc/CMakeFiles/camelot_ipc.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/camelot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/camelot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/camelot_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
