# Empty dependencies file for camelot_server.
# This may be replaced when dependencies are built.
