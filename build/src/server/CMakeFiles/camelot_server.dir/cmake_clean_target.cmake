file(REMOVE_RECURSE
  "libcamelot_server.a"
)
