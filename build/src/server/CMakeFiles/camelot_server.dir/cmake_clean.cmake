file(REMOVE_RECURSE
  "CMakeFiles/camelot_server.dir/data_server.cc.o"
  "CMakeFiles/camelot_server.dir/data_server.cc.o.d"
  "libcamelot_server.a"
  "libcamelot_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
