file(REMOVE_RECURSE
  "CMakeFiles/camelot_tranman.dir/messages.cc.o"
  "CMakeFiles/camelot_tranman.dir/messages.cc.o.d"
  "CMakeFiles/camelot_tranman.dir/tranman.cc.o"
  "CMakeFiles/camelot_tranman.dir/tranman.cc.o.d"
  "libcamelot_tranman.a"
  "libcamelot_tranman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_tranman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
