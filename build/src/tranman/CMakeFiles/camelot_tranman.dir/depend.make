# Empty dependencies file for camelot_tranman.
# This may be replaced when dependencies are built.
