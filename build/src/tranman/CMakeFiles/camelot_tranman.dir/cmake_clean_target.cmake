file(REMOVE_RECURSE
  "libcamelot_tranman.a"
)
