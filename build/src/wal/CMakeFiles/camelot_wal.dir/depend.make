# Empty dependencies file for camelot_wal.
# This may be replaced when dependencies are built.
