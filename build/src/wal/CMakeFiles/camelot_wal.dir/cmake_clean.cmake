file(REMOVE_RECURSE
  "CMakeFiles/camelot_wal.dir/log_record.cc.o"
  "CMakeFiles/camelot_wal.dir/log_record.cc.o.d"
  "CMakeFiles/camelot_wal.dir/stable_log.cc.o"
  "CMakeFiles/camelot_wal.dir/stable_log.cc.o.d"
  "libcamelot_wal.a"
  "libcamelot_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
