file(REMOVE_RECURSE
  "libcamelot_wal.a"
)
