# Empty dependencies file for camelot_harness.
# This may be replaced when dependencies are built.
