file(REMOVE_RECURSE
  "libcamelot_harness.a"
)
