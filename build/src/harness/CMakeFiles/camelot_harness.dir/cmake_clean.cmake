file(REMOVE_RECURSE
  "CMakeFiles/camelot_harness.dir/experiments.cc.o"
  "CMakeFiles/camelot_harness.dir/experiments.cc.o.d"
  "CMakeFiles/camelot_harness.dir/world.cc.o"
  "CMakeFiles/camelot_harness.dir/world.cc.o.d"
  "libcamelot_harness.a"
  "libcamelot_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
