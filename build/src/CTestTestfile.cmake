# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("stats")
subdirs("sim")
subdirs("net")
subdirs("ipc")
subdirs("wal")
subdirs("lockmgr")
subdirs("diskmgr")
subdirs("comman")
subdirs("server")
subdirs("tranman")
subdirs("recovery")
subdirs("analysis")
subdirs("harness")
