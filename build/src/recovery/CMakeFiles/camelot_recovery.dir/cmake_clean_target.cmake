file(REMOVE_RECURSE
  "libcamelot_recovery.a"
)
