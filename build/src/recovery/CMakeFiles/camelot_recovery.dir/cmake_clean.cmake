file(REMOVE_RECURSE
  "CMakeFiles/camelot_recovery.dir/recovery.cc.o"
  "CMakeFiles/camelot_recovery.dir/recovery.cc.o.d"
  "libcamelot_recovery.a"
  "libcamelot_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
