# Empty compiler generated dependencies file for camelot_recovery.
# This may be replaced when dependencies are built.
