# Empty dependencies file for camelot_base.
# This may be replaced when dependencies are built.
