file(REMOVE_RECURSE
  "CMakeFiles/camelot_base.dir/codec.cc.o"
  "CMakeFiles/camelot_base.dir/codec.cc.o.d"
  "CMakeFiles/camelot_base.dir/logging.cc.o"
  "CMakeFiles/camelot_base.dir/logging.cc.o.d"
  "CMakeFiles/camelot_base.dir/status.cc.o"
  "CMakeFiles/camelot_base.dir/status.cc.o.d"
  "CMakeFiles/camelot_base.dir/types.cc.o"
  "CMakeFiles/camelot_base.dir/types.cc.o.d"
  "libcamelot_base.a"
  "libcamelot_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
