file(REMOVE_RECURSE
  "libcamelot_base.a"
)
