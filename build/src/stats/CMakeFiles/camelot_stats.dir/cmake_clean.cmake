file(REMOVE_RECURSE
  "CMakeFiles/camelot_stats.dir/ascii_chart.cc.o"
  "CMakeFiles/camelot_stats.dir/ascii_chart.cc.o.d"
  "CMakeFiles/camelot_stats.dir/summary.cc.o"
  "CMakeFiles/camelot_stats.dir/summary.cc.o.d"
  "CMakeFiles/camelot_stats.dir/table.cc.o"
  "CMakeFiles/camelot_stats.dir/table.cc.o.d"
  "libcamelot_stats.a"
  "libcamelot_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camelot_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
