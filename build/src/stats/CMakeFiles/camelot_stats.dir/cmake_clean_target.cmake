file(REMOVE_RECURSE
  "libcamelot_stats.a"
)
