# Empty compiler generated dependencies file for camelot_stats.
# This may be replaced when dependencies are built.
